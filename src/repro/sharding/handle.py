"""ShardHandle: the router's only doorway to a shard, local or remote.

PR 5's router held *direct object references* to its shards -- fine for
one process, fatal for scaling: every scatter fanned out over threads in
one GIL-bound interpreter (BENCH_sharding.json: 0.38x at shards=4).  This
module tears that coupling apart.  The router now speaks a small
**handle protocol** -- exactly the shard surface it actually uses -- and
two interchangeable backends implement it:

:class:`InProcessShardHandle`
    A thin wrapper over a live :class:`~repro.serving.service
    .GraphService` / :class:`~repro.replication.ReplicatedGraphService`
    in this process.  The default; zero behaviour change (unknown
    attributes pass through to the wrapped service, so diagnostic pokes
    like ``handle.graph`` keep working).

:class:`ProcessShardHandle`
    The shard lives in its **own worker process**.  The handle forks the
    worker at construction (fork-once + copy-on-write shipping of the
    already-partitioned shard graph, the same discipline as
    :class:`repro.parallel.pool.PersistentWorkerPool`) and afterwards
    speaks a length-prefixed pickle RPC over two pipes
    (:func:`repro.parallel.pool.send_frame` frames, ``<Q length><pickle
    payload>``)::

        router -> worker:  (op, ...) request, stamped with the current
                           FaultPlan delta and a tracing on/off flag
        worker -> router:  ("ok", value, spans, plan_events)
                         | ("err", exception, spans, plan_events)

    Every reply envelope carries the worker tracer's drained spans
    (grafted under the router-side span that was open during the call,
    so one submit still yields one connected trace tree) and the worker
    plan copy's new fault hits / fired triggers (absorbed into the
    router-side plan, so ``plan.fired()`` assertions hold across the
    boundary).  A worker that dies -- crash point inside the child, or a
    plain SIGKILL -- surfaces as :class:`ShardCrashed` at the next RPC:
    the router fail-stops exactly as it does for an in-process shard
    failure, and :meth:`ShardedGraphService.recover` rebuilds fresh
    workers from each shard's snapshot + WAL (the fenced restart: the
    old worker is reaped before the directory is re-opened, so no
    zombie writer can race the replacement).

The backend is chosen per service via the ``backend=`` constructor
argument, defaulting to the ``REPRO_SHARD_PROCS`` environment knob
(``1`` selects ``"process"``); the cross-backend conformance suite in
``tests/sharding/`` proves both backends bit-identical to the unsharded
service at every batch.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Callable, Optional

from repro import faults
from repro.obs.trace import get_tracer
from repro.parallel.pool import recv_frame, send_frame
from repro.util.validation import ReproError

__all__ = [
    "InProcessShardHandle",
    "ProcessShardHandle",
    "ShardCrashed",
    "default_shard_backend",
]

#: accepted backend names, in the order the docs present them
BACKENDS = ("inproc", "process")


class ShardCrashed(ReproError):
    """A shard worker process died mid-conversation (EOF on its pipes).

    Raised by :class:`ProcessShardHandle` in place of whatever reply the
    worker owed; the router reacts exactly as to any other shard apply
    failure -- it fail-stops, leaving recovery to
    ``ShardedGraphService.recover``.
    """


def default_shard_backend() -> str:
    """Backend from the ``REPRO_SHARD_PROCS`` environment knob.

    ``REPRO_SHARD_PROCS=1`` (or ``true``/``yes``) selects the
    ``"process"`` backend -- one worker process per shard; unset/``0``
    keeps shards in-process.
    """
    raw = os.environ.get("REPRO_SHARD_PROCS", "").strip().lower()
    if raw in ("", "0", "false", "no"):
        return "inproc"
    if raw in ("1", "true", "yes"):
        return "process"
    raise ReproError(f"bad REPRO_SHARD_PROCS: {raw!r} (want 0/1)")


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown shard backend {backend!r}; supported: {BACKENDS}"
        )
    return backend


# ---------------------------------------------------------------------------
# in-process backend
# ---------------------------------------------------------------------------


class InProcessShardHandle:
    """The shard is a live service object in this process (the default).

    Implements the handle protocol by direct delegation; anything outside
    the protocol (``.graph``, ``.promote``, a test poking ``._engines``)
    passes through to the wrapped service, which is what keeps this
    backend a pure refactor of the PR 5 router.
    """

    backend = "inproc"

    def __init__(self, service):
        self._service = service

    # -- the handle protocol -------------------------------------------

    @property
    def version(self) -> int:
        return self._service.version

    def apply_batch(self, changes: list) -> int:
        return self._service.apply_batch(changes)

    def result_and_partial(self, query: str, tool: Optional[str] = None):
        return self._service.result_and_partial(query, tool)

    def merge_partials(self, query: str, tool: Optional[str], partials: list,
                       k: int):
        """Fold per-shard partials through this shard's engine (the merge
        hook lives on engine instances; shard 0's handle hosts the fold)."""
        return self._service.engine(query, tool).merge_partials(partials, k)

    def owned_ids(self) -> dict:
        """External ids this shard owns -- the recovery path rebuilds the
        router's routing tables and replicated-user set from these."""
        g = self._service.graph
        return {
            "users": g.users.external_array().tolist(),
            "posts": g.posts.external_array().tolist(),
            "comments": g.comments.external_array().tolist(),
        }

    def stats(self) -> dict:
        return self._service.stats()

    def metrics_text(self, labels: Optional[dict] = None) -> str:
        return self._service.metrics_text(labels=labels)

    def snapshot(self) -> int:
        return self._service.snapshot()

    def close(self) -> None:
        self._service.close()

    # -- escape hatch ---------------------------------------------------

    def __getattr__(self, name):
        # delegation for everything beyond the protocol (only reachable
        # for names not defined above; __getattr__ is the miss path)
        return getattr(self._service, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InProcessShardHandle<{self._service!r}>"


# ---------------------------------------------------------------------------
# process backend
# ---------------------------------------------------------------------------

#: parent-side pipe ends of every live worker, so a newly forked worker
#: can close the fds it inherited for its *siblings* -- otherwise a dead
#: parent (or sibling) never produces EOF and workers linger as orphans
_PARENT_FDS: set[int] = set()
_SPAWN_LOCK = threading.Lock()

#: request sentinel meaning "fault plan unchanged since last call"
PLAN_UNCHANGED = "__plan_unchanged__"


class ProcessShardHandle:
    """One shard = one forked worker process speaking pipe RPC.

    ``build`` runs **in the child** right after the fork: for a fresh
    service it closes over the already-partitioned shard graph (shipped
    by copy-on-write, never pickled), for recovery it closes over the
    shard directory.  The parent blocks on the worker's boot report --
    ``("ready", version, spans)`` or ``("boot-err", exc)`` -- so a
    constructor error inside the child surfaces synchronously, same as
    the in-process backend.
    """

    backend = "process"

    def __init__(self, index: int, build: Callable[[], object]):
        from repro.sharding import worker as _worker

        self.index = index
        self.pid: Optional[int] = None
        self._last_pid: Optional[int] = None
        self._dead = False
        self._closed = False
        #: id() of the FaultPlan last shipped (None = none installed)
        self._plan_token: Optional[int] = None
        with _SPAWN_LOCK:
            cmd_r, cmd_w = os.pipe()
            res_r, res_w = os.pipe()
            inherited = set(_PARENT_FDS)
            pid = os.fork()
            if pid == 0:  # child: never returns
                _worker.serve(
                    cmd_r, res_w,
                    build,
                    close_fds=inherited | {cmd_w, res_r},
                )
            os.close(cmd_r)
            os.close(res_w)
            self.pid = self._last_pid = pid
            self._cmd_w = cmd_w
            self._res_r = res_r
            _PARENT_FDS.update((cmd_w, res_r))
        try:
            status, payload, spans = recv_frame(self._res_r)
        except (EOFError, OSError):
            self._reap(kill=True)
            raise ShardCrashed(
                f"shard {index} worker died during boot"
            ) from None
        if status != "ready":
            exc = payload
            self._reap(kill=False)  # child already _exit()ed after reporting
            raise exc
        self._graft(spans)
        self._cached_version = payload

    # -- RPC plumbing ---------------------------------------------------

    def _graft(self, spans) -> None:
        tr = get_tracer()
        if tr is not None and spans:
            tr.graft(spans)

    def _plan_directive(self):
        """What to tell the worker about the current fault plan.

        Ships the full (pickled) plan when the installed plan object
        changed since the last call, an explicit ``None`` when a plan was
        uninstalled, and a cheap sentinel otherwise.
        """
        plan = faults.active_plan()
        token = id(plan) if plan is not None else None
        if token == self._plan_token:
            return PLAN_UNCHANGED
        self._plan_token = token
        # hold the shipped plan so its id() cannot be recycled by a new
        # plan while the token still claims it is installed
        self._plan_ref = plan
        return plan

    def _call(self, *request):
        if self._closed:
            raise ReproError(f"shard {self.index} handle is closed")
        if self._dead:
            raise ShardCrashed(
                f"shard {self.index} worker (pid {self._last_pid}) is dead; "
                "recover the sharded service to respawn it"
            )
        plan = faults.active_plan()
        trace = get_tracer() is not None
        try:
            send_frame(self._cmd_w, (request, self._plan_directive(), trace))
            status, payload, spans, plan_events = recv_frame(self._res_r)
        except (EOFError, OSError, BrokenPipeError):
            self._reap(kill=True)
            raise ShardCrashed(
                f"shard {self.index} worker (pid {self._last_pid}) died "
                f"mid-{request[0]}; the router fail-stops and "
                "ShardedGraphService.recover respawns from snapshot+WAL"
            ) from None
        self._graft(spans)
        if plan is not None and plan_events is not None:
            plan.absorb(*plan_events)
        if status == "err":
            raise payload
        return payload

    # -- the handle protocol -------------------------------------------

    @property
    def version(self) -> int:
        return self._call("version")

    def apply_batch(self, changes: list) -> int:
        return self._call("call", "apply_batch", (changes,))

    def result_and_partial(self, query: str, tool: Optional[str] = None):
        return self._call("call", "result_and_partial", (query, tool))

    def merge_partials(self, query: str, tool: Optional[str], partials: list,
                       k: int):
        return self._call("merge", query, tool, partials, k)

    def owned_ids(self) -> dict:
        return self._call("owned_ids")

    def stats(self) -> dict:
        return self._call("call", "stats", ())

    def metrics_text(self, labels: Optional[dict] = None) -> str:
        return self._call("call", "metrics_text", (), {"labels": labels})

    def snapshot(self) -> int:
        return self._call("call", "snapshot", ())

    def close(self) -> None:
        """Graceful shutdown: the worker closes its service (flushing WAL
        buffers) and exits; falls back to SIGKILL if it is already gone."""
        if self._closed:
            return
        if not self._dead:
            try:
                self._call("shutdown")
            except (ShardCrashed, ReproError):
                pass  # worker died first; _call already reaped it
            except BaseException:
                self._reap(kill=True)
                raise
        self._reap(kill=False)
        self._closed = True

    # -- failure machinery ---------------------------------------------

    def kill(self) -> None:
        """SIGKILL the worker (the fault suites' hard process death).

        The next RPC raises :class:`ShardCrashed`; until then the handle
        is indistinguishable from one whose worker died on its own.
        """
        self._reap(kill=True)

    def _reap(self, *, kill: bool) -> None:
        with _SPAWN_LOCK:
            for fd in (getattr(self, "_cmd_w", None), getattr(self, "_res_r", None)):
                if fd is not None:
                    _PARENT_FDS.discard(fd)
                    try:
                        os.close(fd)
                    except OSError:
                        pass
            self._cmd_w = self._res_r = None
        if self.pid is not None:
            if kill:
                try:
                    os.kill(self.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
            try:
                os.waitpid(self.pid, 0)
            except ChildProcessError:
                pass
            self.pid = None
        self._dead = True

    def __del__(self):  # pragma: no cover - exercised via gc in tests
        # an abandoned handle (crash-simulating `del svc`) must not leak
        # its worker: hard-kill, matching the process death it simulates
        if not self._closed and self.pid is not None:
            self._reap(kill=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("dead" if self._dead else "live")
        return f"ProcessShardHandle<shard={self.index}, pid={self.pid}, {state}>"
