"""ShardedGraphService: K independent GraphService shards behind one router.

The horizontal-scale axis of the ROADMAP's serving north star: the graph
itself is partitioned (see :mod:`repro.sharding.partition`) across K
:class:`~repro.serving.service.GraphService` shards -- each with its own
:class:`~repro.model.graph.SocialGraph` arenas, engine registry, WAL +
snapshot directory and kernel workers -- and a thin router owns the write
path, the consistency barrier and the scatter-gather read path:

writes
    Submitted changes pass the same :class:`~repro.serving.ingest
    .SubmitGate` validation and micro-batching as the single-process
    service; each coalesced batch is framed into the **router WAL**, split
    by partition key (users/friendships replicated, content routed by root
    post), and scattered -- concurrently when ``concurrent_scatter`` --
    to every shard via :meth:`GraphService.apply_batch`.  Every shard
    receives every batch (possibly empty), so shard versions advance in
    lockstep with the router's: that lockstep IS the versioned barrier.

reads
    :meth:`query` gathers one mergeable partial per shard (each under its
    shard's lock, all at the barrier version -- a torn read raises instead
    of lying) and folds them through the engine's ``merge_partials`` hook:
    exact global top-k from per-shard top-k for Q1/Q2, min-label join with
    summed per-shard member counts for components, disjoint owned top-k
    for vertex analytics.  The merged :class:`~repro.serving.cache
    .CachedResult` carries the *worst* staleness tag across shards, still
    monotone in the router version.

recovery
    Each shard recovers from its own snapshot + WAL tail; the router then
    replays its own WAL's committed frames to any shard that crashed
    behind the others (the only window where shards can diverge is
    mid-scatter), re-routing each frame deterministically.  Afterward all
    shards sit at the router WAL's last committed version -- the
    convergence property ``tests/sharding/test_fault_injection.py`` pins.

``shards=1`` routes everything to a single shard that *is* the caller's
graph object, and serves results bit-identical to an unsharded
:class:`GraphService` (property-tested for shards ∈ {1, 2, 4} in
``tests/sharding/``).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    Change,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.model.graph import SocialGraph
from repro.obs.metrics import MetricsRegistry, merge_expositions, render_prometheus
from repro.replication.service import ReplicatedGraphService
from repro.obs.trace import current_span, get_tracer, span_if
from repro.serving.cache import CachedResult
from repro.serving.ingest import MicroBatcher, SubmitGate, coerce_changes
from repro.serving.metrics import OpMetrics
from repro.serving.persistence import ChangeLog
from repro.serving.service import GraphService, _Flusher
from repro.obs.trace import trace_output_path
from repro.sharding.handle import (
    InProcessShardHandle,
    ProcessShardHandle,
    default_shard_backend,
    validate_backend,
)
from repro.sharding.partition import partition_graph, shard_of
from repro.util.timer import WallClock
from repro.util.validation import DeadlineExceeded, ReproError

__all__ = ["SHARDABLE_TOOLS", "ShardedGraphService", "default_shards"]

#: tools implementing the mergeable-result protocol (the NMF baselines
#: predate it and keep running unsharded)
SHARDABLE_TOOLS = ("graphblas-batch", "graphblas-incremental")

_META_FILE = "router.json"
_META_SCHEMA = 1


def default_shards() -> int:
    """Shard count from the ``REPRO_SHARDS`` environment knob (default 1)."""
    try:
        n = int(os.environ.get("REPRO_SHARDS", "1"))
    except ValueError as exc:
        raise ReproError(f"bad REPRO_SHARDS: {exc}") from None
    if n < 1:
        raise ReproError(f"REPRO_SHARDS must be >= 1, got {n}")
    return n


class _ShardBuilder:
    """Deferred construction of one shard's service.

    Under the ``"inproc"`` backend it runs immediately in the router's
    process; under ``"process"`` it runs *inside the freshly forked
    worker*, so the partitioned shard graph it closes over travels by
    copy-on-write pages, never through a pickle.
    """

    def __init__(self, graph, data_dir, replicas: int, shard_kwargs: dict):
        self.graph = graph
        self.data_dir = data_dir
        self.replicas = replicas
        self.shard_kwargs = shard_kwargs

    def __call__(self):
        if self.replicas:
            return ReplicatedGraphService(
                self.graph, replicas=self.replicas, data_dir=self.data_dir,
                **self.shard_kwargs,
            )
        return GraphService(
            self.graph, data_dir=self.data_dir, **self.shard_kwargs
        )


class _ShardRecoverer:
    """Deferred per-shard recovery (snapshot + WAL tail), backend-agnostic.

    The fenced restart: by the time this runs, the previous worker (if
    any) has been reaped, so exactly one process ever has the shard
    directory open for writing.
    """

    def __init__(self, shard_cls, shard_dir, shard: tuple, shard_kwargs: dict):
        self.shard_cls = shard_cls
        self.shard_dir = shard_dir
        self.shard = shard
        self.shard_kwargs = shard_kwargs

    def __call__(self):
        return self.shard_cls.recover(
            self.shard_dir, shard=self.shard, **self.shard_kwargs
        )


class ShardedGraphService:
    """Hash-partitioned serving: one router, K GraphService shards.

    Constructor arguments mirror :class:`~repro.serving.service
    .GraphService` (they configure every shard identically) plus
    ``shards`` -- the partition width, defaulting to the ``REPRO_SHARDS``
    environment knob -- and ``replicas``: when positive, each shard is a
    :class:`~repro.replication.ReplicatedGraphService` fleet (K shards ×
    R replicas; requires a ``data_dir``), so a shard's leader can die and
    be replaced via ``shard.promote()`` without repartitioning.  Barrier
    reads always come from shard leaders; replicas are each shard's
    failover capacity.

    The router never touches shard objects directly: every shard sits
    behind a :mod:`~repro.sharding.handle` chosen by ``backend`` --
    ``"inproc"`` (the default: shards live in this process) or
    ``"process"`` (one forked worker process per shard, escaping the GIL
    on multicore hosts), defaulting to the ``REPRO_SHARD_PROCS``
    environment knob.  Both backends serve bit-identical results (the
    cross-backend conformance suite in ``tests/sharding/`` is the
    oracle).

    >>> from repro.model.changes import AddFriendship, AddUser
    >>> svc = ShardedGraphService(shards=2, tools=("graphblas-incremental",),
    ...                           analytics=("components",), max_batch=1)
    >>> svc.submit([AddUser(1), AddUser(2), AddUser(3)])
    1
    >>> svc.submit(AddFriendship(1, 2))
    2
    >>> svc.query("components").top      # merged across both shards
    ((1, 2), (3, 1))
    >>> svc.query("components").version
    2
    >>> svc.close()
    """

    def __init__(
        self,
        graph: Optional[SocialGraph] = None,
        *,
        shards: Optional[int] = None,
        replicas: int = 0,
        backend: Optional[str] = None,
        queries: tuple = ("Q1", "Q2"),
        tools: tuple = SHARDABLE_TOOLS,
        analytics: tuple = (),
        analytics_threshold: float = 0.1,
        k: int = 3,
        q2_algorithm: str = "fastsv",
        max_batch: int = 256,
        max_delay_ms: float = 50.0,
        max_pending: Optional[int] = None,
        data_dir=None,
        snapshot_every: int = 0,
        keep_snapshots: int = 2,
        wal_sync: bool = True,
        auto_flush: bool = False,
        concurrent_scatter: bool = True,
        concurrent_refresh: bool = True,
        _shard_services: Optional[list] = None,
    ):
        if shards is None:
            shards = default_shards()
        if shards < 1:
            raise ReproError(f"shards must be >= 1, got {shards}")
        if replicas < 0:
            raise ReproError(f"replicas must be >= 0, got {replicas}")
        if replicas and data_dir is None:
            raise ReproError(
                "replicated shards keep replica state on disk; pass data_dir "
                "when replicas > 0"
            )
        for t in tools:
            if t not in SHARDABLE_TOOLS:
                raise ReproError(
                    f"tool {t!r} does not implement the mergeable-result "
                    f"protocol; sharded serving supports {SHARDABLE_TOOLS}"
                )
        self.num_shards = shards
        self.num_replicas = replicas
        self.backend = validate_backend(backend or default_shard_backend())
        self.queries = tuple(queries)
        self.tools = tuple(tools)
        self.analytics = tuple(analytics)
        self.primary_tool = self.tools[0] if self.tools else None
        self.k = k
        self.version = 0

        self._lock = threading.RLock()
        self._batcher = MicroBatcher(
            max_changes=max_batch, max_delay_ms=max_delay_ms,
            max_pending=max_pending,
        )
        self._gate = SubmitGate(self._known_applied)
        self._metrics = OpMetrics()
        #: router-level typed metrics (each shard keeps its own registry)
        self.registry = MetricsRegistry()
        self._closed = False
        self._failed = False
        #: external content id -> owner shard (the routing tables; comments
        #: inherit their root post's shard so each comment tree plus its
        #: likes is entirely shard-local)
        self._post_shard: dict[int, int] = {}
        self._comment_shard: dict[int, int] = {}
        #: users are replicated to every shard, so the router tracks them
        #: itself (the SubmitGate hook must not cost a shard RPC per
        #: submit under the process backend)
        self._users: set[int] = set()

        self._wal: Optional[ChangeLog] = None
        if data_dir is not None:
            data_dir = Path(data_dir)
            if _shard_services is None:
                if (data_dir / _META_FILE).exists():
                    raise ReproError(
                        f"{data_dir} already holds sharded service state; use "
                        "ShardedGraphService.recover(data_dir) to resume it"
                    )
                if (data_dir / ChangeLog.FILENAME).exists() or any(
                    data_dir.glob("snapshot-*")
                ):
                    # an unsharded GraphService lived here: appending router
                    # frames into its WAL would corrupt both histories
                    raise ReproError(
                        f"{data_dir} already holds (unsharded) GraphService "
                        "state; recover it with GraphService.recover or point "
                        "the sharded service at a fresh directory"
                    )

        if _shard_services is not None:
            # recovery path: adopt already-recovered shard handles and
            # rebuild the routing tables from what each shard actually owns
            self._shards = [
                svc if isinstance(svc, (InProcessShardHandle, ProcessShardHandle))
                else InProcessShardHandle(svc)
                for svc in _shard_services
            ]
            for i, handle in enumerate(self._shards):
                owned = handle.owned_ids()
                for p in owned["posts"]:
                    self._post_shard[p] = i
                for c in owned["comments"]:
                    self._comment_shard[c] = i
                if i == 0:
                    # users are replicated: any shard knows them all
                    self._users.update(owned["users"])
        else:
            source_graph = graph if graph is not None else SocialGraph()
            self._users.update(source_graph.users.external_array().tolist())
            shard_graphs, self._post_shard, self._comment_shard = partition_graph(
                source_graph, shards
            )
            self._shards = []
            created_dirs: list[Path] = []
            try:
                for i in range(shards):
                    shard_dir = None
                    if data_dir is not None:
                        shard_dir = data_dir / f"shard-{i:02d}"
                        if not shard_dir.exists():
                            created_dirs.append(shard_dir)
                    shard_kwargs = dict(
                        queries=queries,
                        tools=tools,
                        analytics=analytics,
                        analytics_threshold=analytics_threshold,
                        k=k,
                        q2_algorithm=q2_algorithm,
                        snapshot_every=snapshot_every,
                        keep_snapshots=keep_snapshots,
                        wal_sync=wal_sync,
                        concurrent_refresh=concurrent_refresh,
                        shard=(i, shards),
                    )
                    build = _ShardBuilder(
                        shard_graphs[i], shard_dir, replicas, shard_kwargs
                    )
                    if self.backend == "process":
                        # fork now: the child builds the service from the
                        # copy-on-write shard graph -- nothing is pickled
                        self._shards.append(ProcessShardHandle(i, build))
                    else:
                        self._shards.append(InProcessShardHandle(build()))
            except BaseException:
                # a failed construction must not poison data_dir: drop the
                # shard directories this attempt created (router.json is
                # only written below, after every shard exists)
                for svc in self._shards:
                    svc.close()
                for d in created_dirs:
                    shutil.rmtree(d, ignore_errors=True)
                raise

        if data_dir is not None:
            data_dir.mkdir(parents=True, exist_ok=True)
            meta_path = data_dir / _META_FILE
            if not meta_path.exists():
                with open(meta_path, "w") as fh:
                    json.dump(
                        {"schema": _META_SCHEMA, "shards": shards,
                         "replicas": replicas},
                        fh,
                    )
            self._wal = ChangeLog(data_dir, sync=wal_sync)

        self._scatter_pool: Optional[ThreadPoolExecutor] = None
        if concurrent_scatter and shards > 1:
            self._scatter_pool = ThreadPoolExecutor(
                max_workers=shards, thread_name_prefix="shard-scatter"
            )

        self._flusher: Optional[_Flusher] = None
        if auto_flush:
            self._flusher = _Flusher(self, max(max_delay_ms, 1.0) / 2e3)
            self._flusher.start()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, data_dir, **kwargs) -> "ShardedGraphService":
        """Rebuild a sharded service from its data directory after a crash.

        Every shard recovers independently (newest snapshot + committed
        tail of its own WAL); shards that crashed *behind* the router WAL
        -- the mid-scatter window -- are then caught up by re-routing the
        router WAL's committed frames to them, so all shards converge to
        the router WAL's last committed version.  Keyword arguments name
        the same engine configuration the original service ran with;
        ``shards`` is read back from the persisted ``router.json`` and
        must not be changed across a recovery (the partition is part of
        the durable state).
        """
        data_dir = Path(data_dir)
        meta_path = data_dir / _META_FILE
        if not meta_path.exists():
            raise ReproError(f"no sharded service state in {data_dir}")
        with open(meta_path) as fh:
            meta = json.load(fh)
        if meta.get("schema") != _META_SCHEMA:
            raise ReproError(f"router meta schema {meta.get('schema')} != {_META_SCHEMA}")
        shards = int(meta["shards"])
        asked = kwargs.pop("shards", None)
        if asked is not None and asked != shards:
            raise ReproError(
                f"cannot recover with shards={asked}: {data_dir} was "
                f"partitioned with shards={shards} (repartitioning is a "
                "rebuild, not a recovery)"
            )
        replicas = int(meta.get("replicas", 0))
        asked_r = kwargs.pop("replicas", None)
        if asked_r is not None and asked_r != replicas:
            raise ReproError(
                f"cannot recover with replicas={asked_r}: {data_dir} was laid "
                f"out with replicas={replicas} (resizing the fleet is a "
                "rebuild, not a recovery)"
            )
        wal_sync = kwargs.get("wal_sync", True)
        backend = validate_backend(
            kwargs.get("backend") or default_shard_backend()
        )
        kwargs["backend"] = backend
        shard_kwargs = {
            key: kwargs[key]
            for key in (
                "queries", "tools", "analytics", "analytics_threshold", "k",
                "q2_algorithm", "snapshot_every", "keep_snapshots", "wal_sync",
                "concurrent_refresh",
            )
            if key in kwargs
        }
        with span_if(get_tracer(), "recover", shards=shards) as sp:
            shard_cls = ReplicatedGraphService if replicas else GraphService
            services = []
            try:
                for i in range(shards):
                    build = _ShardRecoverer(
                        shard_cls, data_dir / f"shard-{i:02d}", (i, shards),
                        shard_kwargs,
                    )
                    if backend == "process":
                        services.append(ProcessShardHandle(i, build))
                    else:
                        services.append(InProcessShardHandle(build()))
            except BaseException:
                for svc in services:
                    svc.close()
                raise
            try:
                router_wal = ChangeLog(data_dir, sync=wal_sync)
                router_wal.repair()
                service = cls(
                    shards=shards, replicas=replicas, data_dir=data_dir,
                    _shard_services=services, **kwargs
                )
                base = min(svc.version for svc in services)
                target = max(
                    [router_wal.last_version()] + [svc.version for svc in services]
                )
                replayed = 0
                for v, batch in router_wal.replay(after_version=base):
                    subs = service._route(list(batch))
                    for i, svc in enumerate(services):
                        if svc.version < v:
                            svc.apply_batch(subs[i])
                            replayed += 1
                laggard = [svc.version for svc in services if svc.version != target]
                if laggard:
                    raise ReproError(
                        f"sharded recovery did not converge: shard versions "
                        f"{[svc.version for svc in services]}, router WAL at {target}"
                    )
                sp.set(replayed=replayed)
                service.version = target
                return service
            except BaseException:
                for svc in services:
                    svc.close()
                raise

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def submit(self, changes: Union[Change, ChangeSet, Iterable[Change]]) -> int:
        """Enqueue change(s); returns the current applied router version.

        On a bounded router (``max_pending``), an overflowing submission
        raises :class:`~repro.serving.ingest.QueueFull` before validation
        tracks anything -- same backpressure semantics as the unsharded
        service and the gateway.
        """
        with self._lock:
            self._check_open()
            with span_if(get_tracer(), "submit") as sp:
                with self._metrics.timed("submit"):
                    items = coerce_changes(changes)
                    self._batcher.reserve(len(items))
                    self._gate.admit(items)
                    batch = self._batcher.offer(items)
                sp.set(changes=len(items), flushed=batch is not None)
                if batch is not None:
                    self._apply(batch)
            self.registry.gauge("repro_ingest_queue_depth").set(self._batcher.pending)
            return self.version

    def flush(self) -> int:
        """Apply everything pending now; returns the new applied version."""
        with self._lock:
            self._check_open()
            batch = self._batcher.drain()
            if batch is not None:
                with span_if(get_tracer(), "flush"):
                    self._apply(batch)
            self.registry.gauge("repro_ingest_queue_depth").set(self._batcher.pending)
            return self.version

    def _apply(self, batch: ChangeSet) -> None:
        """Router-WAL, route, scatter one batch; fail-stop on any error."""
        next_version = self.version + 1
        tr = get_tracer()
        try:
            with span_if(tr, "batch", version=next_version, changes=len(batch)):
                self.registry.histogram("repro_batch_size").observe(len(batch))
                if self._wal is not None:
                    with self._metrics.timed("wal"):
                        with span_if(tr, "wal") as wsp:
                            nbytes = self._wal.append(next_version, batch)
                            wsp.set(nbytes=nbytes)
                    self.registry.counter("repro_wal_bytes_total").inc(nbytes)
                subs = self._route(list(batch))
                sizes = [len(sub) for sub in subs]
                for i, n in enumerate(sizes):
                    self.registry.counter(
                        "repro_shard_changes_total", shard=str(i)
                    ).inc(n)
                if sum(sizes):
                    # fan-out balance: largest shard sub-batch / mean
                    # (1.0 = perfectly even split, num_shards = all-to-one)
                    self.registry.histogram("repro_scatter_skew").observe(
                        max(sizes) * len(sizes) / sum(sizes)
                    )
                with self._metrics.timed("scatter"):
                    with span_if(tr, "scatter", version=next_version):
                        self._scatter(subs, next_version)
        except BaseException:
            self._failed = True
            self._teardown_failed()
            raise
        self.version = next_version
        self._gate.clear()

    def _route(self, items: list[Change]) -> list[list[Change]]:
        """Split one batch by partition key; updates the routing tables.

        Users and friendship edges go to **every** shard (Q2 needs the
        friends graph among arbitrary likers; analytics partials re-slice
        it by ownership); a post goes to ``shard_of(post_id)``; comments
        and likes follow their root post.  Deterministic, so recovery can
        re-route a WAL frame and reach the same split.
        """
        subs: list[list[Change]] = [[] for _ in range(self.num_shards)]
        for ch in items:
            if isinstance(ch, (AddUser, AddFriendship, RemoveFriendship)):
                if isinstance(ch, AddUser):
                    self._users.add(ch.user_id)
                for sub in subs:
                    sub.append(ch)
                continue
            if isinstance(ch, AddPost):
                s = shard_of(ch.post_id, self.num_shards)
                self._post_shard[ch.post_id] = s
            elif isinstance(ch, AddComment):
                s = self._comment_shard.get(ch.parent_id)
                if s is None:
                    s = self._post_shard[ch.parent_id]
                self._comment_shard[ch.comment_id] = s
            elif isinstance(ch, (AddLike, RemoveLike)):
                s = self._comment_shard[ch.comment_id]
            else:
                raise ReproError(f"unroutable change type {type(ch)}")
            subs[s].append(ch)
        return subs

    def _scatter(self, subs: list[list[Change]], next_version: int) -> None:
        """Hand every shard its sub-batch; all must land on ``next_version``.

        Concurrent when the scatter pool exists -- shards are fully
        independent (own graph, own engines, own locks).  Failures are
        surfaced in shard order, deterministically, after every future
        settles; any failure fail-stops the router (shards may then
        disagree by one version, which is exactly what :meth:`recover`
        reconciles from the router WAL).
        """
        tr = get_tracer()
        # the enclosing "scatter" span, passed explicitly: the contextvar
        # does not propagate into the scatter pool's threads
        parent = current_span()
        if self._scatter_pool is None:
            results = [
                self._apply_shard(i, svc, sub, tr, parent)
                for i, (svc, sub) in enumerate(zip(self._shards, subs))
            ]
        else:
            futures = [
                self._scatter_pool.submit(self._apply_shard, i, svc, sub, tr, parent)
                for i, (svc, sub) in enumerate(zip(self._shards, subs))
            ]
            results, first_error = [], None
            for fut in futures:
                try:
                    results.append(fut.result())
                except BaseException as exc:
                    results.append(None)
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
        for i, got in enumerate(results):
            if got != next_version:
                raise ReproError(
                    f"shard {i} applied to v{got}, router expected v{next_version}"
                )

    @staticmethod
    def _apply_shard(i: int, svc, sub: list, tr, parent) -> int:
        """One shard's slice of a scatter, under its own ``shard`` span.

        ``svc`` is a shard *handle*.  Runs on a scatter-pool thread (or
        inline when serial); entering the span installs it as the
        thread's current span, so the shard service's own
        ``batch``/``wal``/``refresh`` spans hang off it -- directly for
        an in-process shard, grafted out of the reply envelope for a
        process shard -- and the whole scatter stays one connected trace
        tree.
        """
        with span_if(tr, "shard", parent=parent, shard=i, changes=len(sub)):
            return svc.apply_batch(sub)

    # ------------------------------------------------------------------
    # reads (scatter-gather)
    # ------------------------------------------------------------------

    def query(
        self,
        query: str,
        tool: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> CachedResult:
        """Merged top-k for ``query`` at a consistent cut across shards.

        Gathers every shard's cached result and mergeable partial at the
        barrier version (shards apply in lockstep with the router, so a
        version skew means a torn read and raises), then folds the
        partials through the engine's ``merge_partials`` hook.  The
        merged result's ``computed_version`` carries the worst per-shard
        staleness -- monotone in the router version, since each shard's
        own tag is monotone.

        ``deadline`` (absolute WallClock instant) is checked at entry and
        between per-shard gathers: a read that cannot finish in budget
        raises :class:`~repro.util.validation.DeadlineExceeded` rather
        than blocking the caller -- abandoned, not failed (the gathered
        shards did nothing torn; no state changed).
        """
        with self._lock:
            self._check_open()
            if deadline is not None and WallClock.now() >= deadline:
                raise DeadlineExceeded(
                    f"sharded read of {query!r} abandoned: deadline passed "
                    "before gather"
                )
            if self._batcher.due():
                self._apply(self._batcher.drain())
            with self._metrics.timed("query"), span_if(
                get_tracer(), "query", query=query
            ):
                if tool is None:
                    tool = query if query in self.analytics else self.primary_tool
                gathered = []
                for svc in self._shards:
                    if deadline is not None and WallClock.now() >= deadline:
                        raise DeadlineExceeded(
                            f"sharded read of {query!r} abandoned after "
                            f"{len(gathered)}/{self.num_shards} shard gathers"
                        )
                    gathered.append(svc.result_and_partial(query, tool))
                shard_results = [r for r, _ in gathered]
                partials = [p for _, p in gathered]
                versions = sorted({r.version for r in shard_results})
                if versions != [self.version]:
                    raise ReproError(
                        f"torn sharded read: shard versions {versions} vs "
                        f"router v{self.version}"
                    )
                top, result_string = self._shards[0].merge_partials(
                    query, tool, partials, self.k
                )
                return CachedResult(
                    query=query,
                    tool=tool,
                    version=self.version,
                    top=tuple(top),
                    result_string=result_string,
                    compute_seconds=max(r.compute_seconds for r in shard_results),
                    computed_version=self.version
                    - max(r.staleness for r in shard_results),
                )

    def stats(self) -> dict:
        """Router-level snapshot plus each shard's own stats()."""
        with self._lock:
            return {
                "version": self.version,
                "shards": self.num_shards,
                "replicas": self.num_replicas,
                "pending": self._batcher.pending,
                "submitted": self._batcher.submitted,
                "applied_batches": self._batcher.batches,
                "queries": list(self.queries),
                "tools": list(self.tools),
                "analytics": list(self.analytics),
                "primary_tool": self.primary_tool,
                "persistent": self._wal is not None,
                "ops": self._metrics.summary(),
                "metrics": self.registry.snapshot(),
                "shard_versions": [svc.version for svc in self._shards],
                "per_shard": [svc.stats() for svc in self._shards],
            }

    def metrics_text(self, labels: Optional[dict] = None) -> str:
        """Prometheus exposition: the router's own series merged with every
        shard's series stamped ``shard="i"`` (replicated shards further
        stamp ``node="node-0j"`` per fleet member).  ``labels`` are base
        labels the caller (e.g. the gateway) stamps onto every series;
        the merge groups series under one ``# TYPE`` line per metric and
        raises on any label collision, so the output always round-trips
        through a strict exposition parse.
        """
        with self._lock:
            base = dict(labels or {})
            parts = [render_prometheus(self.registry, ops=self._metrics,
                                       labels=labels)]
            parts.extend(
                svc.metrics_text(labels={**base, "shard": str(i)})
                for i, svc in enumerate(self._shards)
            )
            return merge_expositions(parts)

    # ------------------------------------------------------------------
    # persistence / lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Snapshot every shard at the current barrier version."""
        with self._lock:
            self._check_open()
            for svc in self._shards:
                svc.snapshot()
            return self.version

    def close(self) -> None:
        """Graceful shutdown: flush pending, close every shard."""
        with self._lock:
            if self._closed:
                return
            if self._batcher.pending and not self._failed:
                self._apply(self._batcher.drain())
            self._closed = True
        if self._flusher is not None:
            self._flusher.stop()
            self._flusher = None
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=True, cancel_futures=True)
            self._scatter_pool = None
        if self._wal is not None:
            self._wal.close()
        for svc in self._shards:
            svc.close()
        # REPRO_TRACE=<path>: under the process backend the shard workers
        # scrub the dump path from their environment (their fragments are
        # grafted into this process's tree), so the router writes the
        # merged trace itself; idempotent alongside in-process shards'
        # own dumps of the same tracer
        out = trace_output_path()
        if out:
            tr = get_tracer()
            if tr is not None:
                tr.dump(out)

    def _known_applied(self, kind: str, external_id: int) -> bool:
        """SubmitGate hook: users are replicated (the router mirrors the
        set every shard holds), content is partitioned (the routing
        tables).  All router-local state -- the gate must not pay a shard
        round-trip per submitted change under the process backend."""
        if kind == "user":
            return external_id in self._users
        table = self._post_shard if kind == "post" else self._comment_shard
        return external_id in table

    def _teardown_failed(self) -> None:
        """Release threads/processes/files on fail-stop, best-effort.

        A fail-stopped router is dead weight until ``recover``; without
        this, an abandoned one leaks its scatter-pool threads, the healthy
        shards' fan-out threads and -- under the process backend -- whole
        worker processes (the suite-wide leak fixture is the regression
        test).  Mirrors ``GraphService._teardown_parallel`` on the shard
        level.  The flusher (daemon) is left to its ``_failed`` guard:
        joining it here could deadlock on the router lock.
        """
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=True, cancel_futures=True)
            self._scatter_pool = None
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        for svc in self._shards:
            try:
                svc.close()
            except BaseException:  # pragma: no cover - best-effort teardown
                pass

    def _check_open(self) -> None:
        if self._failed:
            raise ReproError(
                "sharded service failed mid-scatter and is fail-stopped; "
                "rebuild it (persistent services: "
                "ShardedGraphService.recover(data_dir))"
            )
        if self._closed:
            raise ReproError("sharded service is closed")

    def _tick(self) -> None:
        """Background-flusher hook: apply an overdue pending batch."""
        with self._lock:
            if not self._closed and not self._failed and self._batcher.due():
                self._apply(self._batcher.drain())

    def __enter__(self) -> "ShardedGraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedGraphService<v{self.version}, shards={self.num_shards}, "
            f"pending={self._batcher.pending}, tools={list(self.tools)}>"
        )
