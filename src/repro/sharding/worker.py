"""The shard worker: child-side serve loop behind a ProcessShardHandle.

One worker process hosts one shard service (a
:class:`~repro.serving.service.GraphService`, or a
:class:`~repro.replication.ReplicatedGraphService` fleet when the router
runs replicated shards).  The parent forks us with a ``build`` closure
over either the partitioned shard graph (fresh start; the graph arrives
by copy-on-write, never pickled) or the shard's data directory
(recovery); we build the service, report ``("ready", version, spans)``
and then answer :mod:`repro.sharding.handle` RPC frames until a
``shutdown`` request or EOF on the command pipe (the parent died).

Fork hygiene, in request order of importance:

* **exit only via ``os._exit``** -- the parent's ``atexit`` registry is
  inherited and must never run here (it would close the kernel pool's
  shared pipes out from under the parent);
* **close inherited parent-side pipe ends** of every sibling handle, so
  a dead parent/sibling produces EOF instead of orphaned workers;
* **never touch the parent's kernel executor** -- the refcounted slot in
  :mod:`repro.graphblas._kernels.parallel` already refuses foreign pids,
  so shard-local kernels simply run serially inside the worker;
* **own the telemetry locally** -- the inherited tracer's span log is
  cleared at boot (the parent keeps the originals) and drained into
  every reply envelope; ``REPRO_TRACE`` is scrubbed from the child
  environment so ``service.close()`` cannot clobber the parent's trace
  dump with a per-shard fragment;
* **fault plans are per-request state** -- each request carries either a
  fresh pickled :class:`~repro.faults.FaultPlan`, an uninstall, or an
  "unchanged" sentinel; crash points then fire *inside this process*,
  and each reply ships the plan copy's new hits / fired triggers back
  for the router-side plan to absorb.
"""

from __future__ import annotations

import os
import pickle
import traceback
from typing import Callable, Optional

from repro import faults
from repro.obs import trace as _trace
from repro.parallel.pool import recv_frame, send_frame
from repro.util.validation import ReproError

__all__ = ["serve"]


class WorkerError(ReproError):
    """Replacement for a worker-side exception that would not pickle.

    Carries the original traceback text so the failure stays debuggable
    from the router side.
    """


def _boot_telemetry():
    """Give the child a clean tracer and a dump-free environment."""
    tr = _trace.get_tracer()  # may lazily install from inherited REPRO_TRACE
    # the parent keeps every span recorded before the fork; keeping the
    # inherited copies here would duplicate them through the first graft
    if tr is not None:
        tr.clear()
    # the parent span that was current at fork time is meaningless here;
    # worker-side roots hang under it only via the router's graft base
    _trace._current.set(None)
    # per-shard workers must never write the process-wide trace dump:
    # that file belongs to the router's merged tree
    os.environ.pop("REPRO_TRACE", None)
    return tr


def _owned_ids(service) -> dict:
    g = service.graph
    return {
        "users": g.users.external_array().tolist(),
        "posts": g.posts.external_array().tolist(),
        "comments": g.comments.external_array().tolist(),
    }


def _drain_spans(want_trace: bool):
    tr = _trace.get_tracer()
    if want_trace and tr is None:
        # the router turned tracing on after the fork (set_tracer): start
        # collecting from this request onward
        _trace.set_tracer(_trace.Tracer())
        return []
    if tr is None:
        return []
    spans = tr.drain()
    return spans if want_trace else []


def _apply_plan_directive(directive, state: dict) -> None:
    from repro.sharding.handle import PLAN_UNCHANGED

    if directive == PLAN_UNCHANGED:
        return
    faults.set_active_plan(directive)
    state["plan"] = directive
    # the shipped copy arrives pre-loaded with every hit the router-side
    # plan had already seen; report only hits that happen *here*
    state["hits_sent"] = 0 if directive is None else len(directive.hits)


def _plan_events(state: dict):
    plan = state.get("plan")
    if plan is None:
        return None
    events = plan.events_since(state.get("hits_sent", 0))
    state["hits_sent"] = state.get("hits_sent", 0) + len(events[0])
    return events


def _safe_exc(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, a ``WorkerError`` otherwise."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except BaseException:
        return WorkerError(
            f"shard worker raised unpicklable {type(exc).__name__}: {exc}\n"
            + "".join(traceback.format_exception(exc))
        )


def serve(cmd_r: int, res_w: int, build: Callable[[], object],
          *, close_fds=()) -> None:
    """Child-side main: build the shard service, answer RPC until told to
    stop.  Never returns -- exits the process via ``os._exit``."""
    status = 0
    try:
        for fd in close_fds:
            try:
                os.close(fd)
            except OSError:
                pass
        want_trace_boot = _boot_telemetry() is not None
        try:
            service = build()
        except BaseException as exc:
            send_frame(res_w, ("boot-err", _safe_exc(exc), []))
            os._exit(0)
        send_frame(
            res_w, ("ready", service.version, _drain_spans(want_trace_boot))
        )
        state: dict = {"plan": None, "hits_sent": 0}
        while True:
            try:
                request, plan_directive, want_trace = recv_frame(cmd_r)
            except EOFError:
                # the parent is gone; nothing to reply to -- just vanish
                # (durable state is safe: recovery replays snapshot+WAL)
                break
            _apply_plan_directive(plan_directive, state)
            op = request[0]
            try:
                if op == "call":
                    name, args = request[1], request[2]
                    kwargs = request[3] if len(request) > 3 else {}
                    value = getattr(service, name)(*args, **kwargs)
                elif op == "version":
                    value = service.version
                elif op == "merge":
                    _, query, tool, partials, k = request
                    value = service.engine(query, tool).merge_partials(
                        partials, k
                    )
                elif op == "owned_ids":
                    value = _owned_ids(service)
                elif op == "shutdown":
                    faults.set_active_plan(None)
                    service.close()
                    send_frame(
                        res_w,
                        ("ok", None, _drain_spans(want_trace),
                         _plan_events(state)),
                    )
                    break
                else:
                    raise ReproError(f"unknown shard RPC op {op!r}")
            except BaseException as exc:
                send_frame(
                    res_w,
                    ("err", _safe_exc(exc), _drain_spans(want_trace),
                     _plan_events(state)),
                )
            else:
                send_frame(
                    res_w,
                    ("ok", value, _drain_spans(want_trace),
                     _plan_events(state)),
                )
    except BaseException:  # pragma: no cover - last-ditch child failure
        status = 1
    finally:
        os._exit(status)
