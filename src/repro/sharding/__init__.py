"""repro.sharding -- partitioned serving with scatter-gather top-k.

The horizontal-scale layer over :mod:`repro.serving`:

* :mod:`repro.sharding.partition` -- the partition function (users hashed,
  content by root post, friendships replicated) and initial-graph split;
* :mod:`repro.sharding.merge` -- pure merge functions behind the
  mergeable-result protocol on
  :class:`~repro.queries.engine.EngineBase`;
* :mod:`repro.sharding.handle` -- the :class:`ShardHandle` protocol the
  router speaks to its shards, with in-process and process-per-shard
  backends (``backend=`` / ``REPRO_SHARD_PROCS``) and the worker-side
  serve loop in :mod:`repro.sharding.worker`;
* :mod:`repro.sharding.router` -- :class:`ShardedGraphService`, the
  router owning the write path, router WAL, versioned consistency
  barrier, scatter-gather reads, and orchestrated per-shard recovery.

The router is exported lazily (PEP 562): the engine layers import the
leaf modules above, and an eager router import here would cycle back
through :mod:`repro.serving`.
"""

from repro.sharding.handle import (
    InProcessShardHandle,
    ProcessShardHandle,
    ShardCrashed,
    default_shard_backend,
)
from repro.sharding.merge import (
    merge_partition_partials,
    merge_topk_entries,
    merge_vertex_partials,
)
from repro.sharding.partition import partition_graph, shard_of, shard_of_array

__all__ = [
    "InProcessShardHandle",
    "ProcessShardHandle",
    "SHARDABLE_TOOLS",
    "ShardCrashed",
    "ShardedGraphService",
    "default_shard_backend",
    "default_shards",
    "merge_partition_partials",
    "merge_topk_entries",
    "merge_vertex_partials",
    "partition_graph",
    "shard_of",
    "shard_of_array",
]

_ROUTER_EXPORTS = ("ShardedGraphService", "SHARDABLE_TOOLS", "default_shards")


def __getattr__(name: str):
    if name in _ROUTER_EXPORTS:
        from repro.sharding import router

        return getattr(router, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
