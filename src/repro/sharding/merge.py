"""Mergeable-result protocol: exact global top-k from per-shard partials.

Every engine the sharded router serves exposes two hooks (the protocol
lives on :class:`repro.queries.engine.EngineBase`):

``partial()``
    A mergeable summary of the engine's *served* result, restricted to the
    entities its shard **owns**.  Three shapes exist, one per result kind:

    * query engines (Q1/Q2): the shard's top-k as ``(external_id, score,
      timestamp)`` triples -- content is partitioned, so per-shard top-k
      lists are disjoint and any global top-k member is in its owner's
      partial (the classic scatter-gather top-k argument);
    * vertex analytics (degree, pagerank, ...): the top-k ``(external_id,
      score)`` pairs **among the shard's owned users** -- every shard's
      scores are globally exact (the friends graph is replicated), and
      ownership makes the partials disjoint;
    * partition analytics (components, cdlp): one ``(label, min_member,
      rep_external_id, owned_count)`` row per partition that contains at
      least one owned user -- sizes are split across shards and summed
      back at merge ("min-label join": the label and its canonical
      representative are identical on every shard, the counts are not).

``merge_partials(partials, k)``
    Folds one partial per shard into ``(top, result_string)``, exactly the
    pair an unsharded engine would serve.  Implemented with the pure
    functions below, which the shard-invariance suite
    (``tests/sharding/``) pins bit-identical to the single-process
    :class:`~repro.serving.service.GraphService` for shards ∈ {1, 2, 4}.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "merge_topk_entries",
    "merge_vertex_partials",
    "merge_partition_partials",
    "format_top",
]


def format_top(top: Iterable[tuple]) -> str:
    """The TTC framework's ``id|id|id`` result line.

    Delegates to :meth:`repro.queries.engine.EngineBase.format_top` (the
    single source of truth for the result-line format) via a lazy import,
    so this module stays an import leaf.
    """
    from repro.queries.engine import EngineBase

    return EngineBase.format_top(top)


def merge_topk_entries(
    partials: Sequence[Sequence[tuple[int, int, int]]], k: int
) -> tuple[list[tuple[int, int]], str]:
    """Merge per-shard query top-k triples under the contest ordering.

    Each partial holds ``(external_id, score, timestamp)`` triples for the
    shard's owned posts/comments; ownership is disjoint, so the global
    top-k is the k best of the union under (score desc, timestamp desc,
    external id asc).

    >>> merge_topk_entries([[(11, 9, 2)], [(12, 9, 3), (13, 1, 0)]], k=2)
    ([(12, 9), (11, 9)], '12|11')
    """
    merged = sorted(
        (e for p in partials for e in p),
        key=lambda e: (-e[1], -e[2], e[0]),
    )[:k]
    top = [(ext, score) for ext, score, _ in merged]
    return top, format_top(top)


def merge_vertex_partials(
    partials: Sequence[Sequence[tuple]], k: int
) -> tuple[list[tuple], str]:
    """Merge per-shard vertex-analytics top-k pairs.

    Each partial holds ``(external_id, score)`` pairs for the shard's
    owned users, ordered and merged by (score desc, external id asc) --
    the same ordering
    :meth:`repro.analytics.engine.AnalyticsEngine._top_vertices` uses.

    >>> merge_vertex_partials([[(3, 2)], [(1, 5), (2, 2)]], k=2)
    ([(1, 5), (2, 2)], '1|2')
    """
    merged = sorted(
        (e for p in partials for e in p),
        key=lambda e: (-e[1], e[0]),
    )[:k]
    return merged, format_top(merged)


def merge_partition_partials(
    partials: Sequence[Sequence[tuple[int, int, int, int]]], k: int
) -> tuple[list[tuple[int, int]], str]:
    """Min-label join of per-shard partition (component/community) counts.

    Each partial row is ``(label, min_member, rep_external_id,
    owned_count)``.  ``label``/``min_member``/``rep_external_id`` are
    computed over the *full* (replicated) friends graph and therefore
    agree across shards; ``owned_count`` is the number of the shard's
    owned users in the partition, so summing counts per label reassembles
    exact global sizes.  Ordering matches
    :meth:`~repro.analytics.engine.AnalyticsEngine._top_partitions`:
    size desc, then minimum internal member asc.

    >>> a = [(0, 0, 101, 2)]           # shard 0 owns 2 members of label 0
    >>> b = [(0, 0, 101, 1), (3, 3, 104, 1)]
    >>> merge_partition_partials([a, b], k=2)
    ([(101, 3), (104, 1)], '101|104')
    """
    sizes: dict[int, int] = {}
    meta: dict[int, tuple[int, int]] = {}
    for partial in partials:
        for label, min_member, rep_ext, owned_count in partial:
            sizes[label] = sizes.get(label, 0) + owned_count
            meta[label] = (min_member, rep_ext)
    order = sorted(sizes, key=lambda lab: (-sizes[lab], meta[lab][0]))[:k]
    top = [(meta[lab][1], sizes[lab]) for lab in order]
    return top, format_top(top)
