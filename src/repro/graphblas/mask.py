"""Mask wrappers.

A mask restricts where an operation may write.  Any Matrix/Vector can be used
directly as a *value mask* (positions whose stored value is truthy).  Wrap it
in :class:`Mask` to request structural interpretation (every stored position
counts) and/or complementing, mirroring ``GrB_MASK`` descriptor settings but
attached to the object for ergonomic call sites::

    C = A.mxm(B, sr, mask=Mask(M, structure=True, complement=True))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Mask", "resolve_mask"]


@dataclass(frozen=True)
class Mask:
    parent: object  # Vector or Matrix
    complement: bool = False
    structure: bool = False

    def __post_init__(self):
        from repro.graphblas.matrix import Matrix
        from repro.graphblas.vector import Vector

        if not isinstance(self.parent, (Matrix, Vector)):
            raise TypeError(f"Mask parent must be Matrix or Vector, got {type(self.parent)}")


def resolve_mask(mask, desc) -> Optional[tuple[object, bool, bool]]:
    """Normalise a mask argument to ``(parent, complement, structure)``.

    Accepts None, a bare Matrix/Vector, or a :class:`Mask`; descriptor mask
    flags are OR-ed in.  Returns None when no mask applies.
    """
    comp = bool(desc is not None and desc.mask_complement)
    struct = bool(desc is not None and desc.mask_structure)
    if mask is None:
        if comp:
            # Complement of "no mask" masks out everything only if a mask were
            # present; per the spec a complemented NULL mask writes nowhere.
            # We surface this rare corner explicitly rather than silently.
            raise ValueError("mask_complement set but no mask supplied")
        return None
    if isinstance(mask, Mask):
        return (mask.parent, comp or mask.complement, struct or mask.structure)
    return (mask, comp, struct)


def mask_true_keys(parent, structure: bool) -> np.ndarray:
    """Encoded key array of mask-true positions (see _kernels.coo.encode)."""
    from repro.graphblas.matrix import Matrix

    if isinstance(parent, Matrix):
        rows, cols, vals = parent._rows, parent._cols, parent._values
        keys = rows * parent.ncols + cols
    else:
        keys, vals = parent._indices, parent._values
    if structure:
        return keys
    truthy = vals != 0
    return keys[truthy]
