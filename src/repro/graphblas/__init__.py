"""A pure-Python GraphBLAS: sparse linear algebra over arbitrary semirings.

This package is the repository's stand-in for SuiteSparse:GraphBLAS [Davis,
TOMS 2019], providing the complete operation set the paper's solution uses
(Table I of the paper): ``mxm``, ``mxv``, ``vxm``, ``eWiseAdd``,
``eWiseMult``, ``extract``, ``assign``, ``apply``, ``select``, ``reduce``,
``transpose``, ``build`` and ``extractTuples`` -- all with masks,
accumulators and descriptors per the GraphBLAS C API specification.

Quick start::

    from repro import graphblas as gb

    A = gb.Matrix.from_coo([0, 0, 1], [0, 1, 2], True, 2, 3, dtype=gb.BOOL)
    d = A.reduce_vector(gb.monoid.plus_monoid)     # row degrees
    y = A.mxv(gb.Vector.full(gb.INT64, 3, 1), gb.semiring.plus_times)
"""

from repro.graphblas import descriptor, monoid, ops, semiring
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.dynamic import DynamicMatrix
from repro.graphblas.mask import Mask
from repro.graphblas.matrix import Matrix
from repro.graphblas.monoid import Monoid
from repro.graphblas.ops import BinaryOp, IndexApplyOp, IndexUnaryOp, UnaryOp
from repro.graphblas.semiring import Semiring
from repro.graphblas.types import (
    ALL_TYPES,
    BOOL,
    FP32,
    FP64,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    DataType,
)
from repro.graphblas.vector import Vector
from repro.graphblas import blocks
from repro.graphblas.blocks import concat, diag, hstack, split, vstack

__all__ = [
    "Matrix",
    "DynamicMatrix",
    "Vector",
    "Mask",
    "Descriptor",
    "DataType",
    "UnaryOp",
    "BinaryOp",
    "IndexUnaryOp",
    "IndexApplyOp",
    "Monoid",
    "Semiring",
    "ops",
    "monoid",
    "semiring",
    "descriptor",
    "blocks",
    "concat",
    "split",
    "hstack",
    "vstack",
    "diag",
    "ALL_TYPES",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
]
