"""Updatable sparse-matrix storage (paper future work, item (1)).

The paper's conclusion proposes "updatable compressed matrix representation
formats such as faimGraph [10] or Hornet [2]" to avoid rebuilding CSR on
every change set.  This module implements that format in the same spirit,
adapted from GPU memory pools to NumPy arenas:

* **Arena + per-row blocks** (Hornet): all adjacency data lives in two flat
  arrays (``cols``/``vals``).  Each row owns a contiguous *block* with a
  power-of-two capacity and a fill length; inserts append into the slack.
* **Capacity-class free lists** (faimGraph): when a row outgrows its block it
  relocates to a block of twice the capacity and its old block is pushed on
  a per-size free list for reuse, so a long insert stream reaches a steady
  state with bounded arena growth.
* **Swap-with-last deletion** (Hornet): rows are *unsorted*; removing an
  entry moves the row's last entry into the hole -- O(scan) to find, O(1)
  to delete, no tombstones.
* **Dirty-row freeze** (this repo's addition): :meth:`DynamicMatrix.freeze`
  maintains a canonical compute :class:`Matrix` view across mutations.
  Rows touched since the last freeze are re-canonicalised and spliced into
  the previous frozen arrays (:func:`.._kernels.freeze.merge_dirty_rows`)
  -- O(nnz) copies, no global sort -- and when *nothing* changed the same
  Matrix object is returned, so its cached ``indptr``/transpose survive.

Amortised costs: ``set_element`` O(row degree) (membership scan dominates),
``remove_element`` O(row degree), ``to_matrix`` O(nnz log nnz) (one sort),
``freeze`` O(nnz + Δ·degree·log) after changes and O(1) when clean.
The ablation benchmark ``benchmarks/bench_ablation_dynamic.py`` compares
this against rebuild-per-changeset CSR maintenance on the update phase.

This storage is *not* a GraphBLAS object: computation stays in
:class:`~repro.graphblas.matrix.Matrix`.  ``freeze``/``to_matrix``/
``from_matrix`` convert at phase boundaries, which is exactly how the
paper's future-work deployment would slot a dynamic format under the
existing algorithms -- and how :class:`~repro.model.graph.SocialGraph`
does since the rebuild-free update path landed.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graphblas import ops as _ops
from repro.graphblas import types as _types
from repro.graphblas._kernels.coo import canonicalize_matrix
from repro.graphblas._kernels.freeze import merge_dirty_rows
from repro.graphblas.matrix import Matrix
from repro.storage import ArenaStorage
from repro.storage.heap import HeapArena
from repro.util.validation import (
    DimensionMismatch,
    IndexOutOfBounds,
    ReproError,
    check_positive,
)

__all__ = ["DynamicMatrix"]

_MIN_CAP = 4  # smallest block; everything is a power of two from here


def _row_segments(rows: np.ndarray):
    """Yield ``(row, lo, hi)`` for each run of equal values in a row-sorted
    index array -- the shared grouping step of the bulk mutators."""
    boundaries = np.flatnonzero(np.diff(rows)) + 1
    for lo, hi in zip(
        np.concatenate([[0], boundaries]),
        np.concatenate([boundaries, [rows.size]]),
    ):
        yield int(rows[lo]), int(lo), int(hi)


def _block_cap(n: int) -> int:
    """Smallest power-of-two capacity >= max(n, _MIN_CAP)."""
    return 1 << max(int(n) - 1, _MIN_CAP - 1).bit_length()


class DynamicMatrix:
    """A fully-dynamic sparse matrix with amortised O(degree) edge updates.

    Supports ``set_element`` / ``remove_element`` / ``get`` plus bulk
    variants, and converts to/from the immutable compute
    :class:`~repro.graphblas.matrix.Matrix`.
    """

    __slots__ = (
        "dtype",
        "_nrows",
        "_ncols",
        "_store",
        "_cols",
        "_vals",
        "_start",
        "_len",
        "_cap",
        "_used",
        "_free",
        "_nvals",
        "_relocations",
        "_dirty",
        "_frozen",
    )

    #: identity attributes :meth:`compact` must *not* copy from the scratch
    #: rebuild: the shape/dtype are equal anyway, the store and frozen view
    #: belong to this object (compact is a physical-layout operation --
    #: the frozen Matrix and dirty set describe logical content, which
    #: compaction preserves by definition), and the relocation counter is
    #: cumulative instrumentation.  Every *other* slot is copied, derived
    #: from ``__slots__`` so a newly added field cannot be forgotten.
    _COMPACT_PRESERVES = frozenset(
        {"dtype", "_nrows", "_ncols", "_store", "_dirty", "_frozen",
         "_relocations"}
    )
    #: slot -> store array name, for the array-valued slots
    _ARRAY_SLOTS = {
        "_cols": "cols", "_vals": "vals",
        "_start": "start", "_len": "len", "_cap": "cap",
    }

    def __init__(self, dtype, nrows: int, ncols: int, *,
                 store: ArenaStorage | None = None):
        self.dtype = _types.lookup(dtype)
        self._nrows = check_positive(nrows, "nrows")
        self._ncols = check_positive(ncols, "ncols")
        self._store = store if store is not None else HeapArena()
        self._cols = self._store.new("cols", 0, np.int64)
        self._vals = self._store.new("vals", 0, self.dtype.np_dtype)
        self._start = self._store.new("start", nrows, np.int64, fill=-1)  # -1: no block yet
        self._len = self._store.new("len", nrows, np.int64)
        self._cap = self._store.new("cap", nrows, np.int64)
        self._used = 0  # arena bump pointer
        self._free: dict[int, list[int]] = {}  # capacity -> block starts
        self._nvals = 0
        self._relocations = 0  # instrumentation for the ablation bench
        self._dirty: set[int] = set()  # rows touched since the last freeze
        self._frozen: Matrix | None = None  # the maintained canonical view

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_matrix(
        cls, matrix: Matrix, *, slack: float = 0.0,
        store: ArenaStorage | None = None,
    ) -> "DynamicMatrix":
        """Adopt an immutable matrix; ``slack`` adds per-row headroom.

        ``slack=0.5`` sizes each block for 1.5x the current degree (rounded
        up to the capacity class), trading memory for fewer relocations on
        a subsequent insert stream.
        """
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        dm = cls(matrix.dtype, matrix.nrows, matrix.ncols, store=store)
        rows, cols, vals = matrix.to_coo()
        if rows.size == 0:
            return dm
        lengths = np.bincount(rows, minlength=matrix.nrows).astype(np.int64)
        caps = np.array(
            [_block_cap(int(np.ceil(n * (1.0 + slack)))) if n else 0 for n in lengths],
            dtype=np.int64,
        )
        starts = np.concatenate([[0], np.cumsum(caps)[:-1]])
        starts[lengths == 0] = -1
        total = int(caps.sum())
        dm._cols = dm._store.resize("cols", dm._cols, total, keep=0)
        dm._vals = dm._store.resize("vals", dm._vals, total, keep=0)
        # rows/cols arrive CSR-sorted: one vectorised scatter places all data
        row_starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        dest = starts[rows] + (np.arange(rows.size) - row_starts[rows])
        dm._cols[dest] = cols
        dm._vals[dest] = dm.dtype.cast(vals)
        dm._start[:] = starts
        dm._len[:] = lengths
        dm._cap[:] = caps
        dm._used = total
        dm._nvals = int(rows.size)
        return dm

    @classmethod
    def open(cls, store: ArenaStorage) -> "DynamicMatrix":
        """Re-open the matrix last :meth:`flush_storage`-ed into ``store``.

        Bit-exact restoration: arrays, free lists, slack and the
        relocation counter all come back as flushed, so the reopened
        matrix is indistinguishable from the one that flushed (the
        mmap/sqlite durability contract the conformance suite checks).
        """
        meta = store.get_meta()
        if not meta:
            raise ReproError("store holds no flushed DynamicMatrix to open")
        dm = cls.__new__(cls)
        dm.dtype = _types.lookup(meta["dtype"])
        dm._nrows = int(meta["nrows"])
        dm._ncols = int(meta["ncols"])
        dm._store = store
        arena = int(meta["arena_size"])
        dm._cols = store.open_array("cols", np.int64)[:arena]
        dm._vals = store.open_array("vals", dm.dtype.np_dtype)[:arena]
        dm._start = store.open_array("start", np.int64)[: dm._nrows]
        dm._len = store.open_array("len", np.int64)[: dm._nrows]
        dm._cap = store.open_array("cap", np.int64)[: dm._nrows]
        dm._used = int(meta["used"])
        dm._nvals = int(meta["nvals"])
        dm._free = {
            int(cap): [int(b) for b in blocks]
            for cap, blocks in meta["free"].items()
        }
        dm._relocations = int(meta.get("relocations", 0))
        dm._dirty = set()
        dm._frozen = None
        return dm

    # ------------------------------------------------------------------
    # storage seam
    # ------------------------------------------------------------------

    @property
    def store(self) -> ArenaStorage:
        """The arena home backing this matrix's arrays."""
        return self._store

    def flush_storage(self) -> bool:
        """Persist arrays + layout metadata through the store.

        No-op (False) on non-persistent backends; after True, the store
        can be :meth:`~repro.storage.ArenaStorage.snapshot_to`-ed or
        reopened with :meth:`open`.
        """
        if not self._store.persistent:
            return False
        self._store.put_meta(
            {
                "dtype": self.dtype.name,
                "nrows": self._nrows,
                "ncols": self._ncols,
                "arena_size": int(self._cols.size),
                "used": self._used,
                "nvals": self._nvals,
                "relocations": self._relocations,
                "free": {str(cap): blocks for cap, blocks in self._free.items()},
            }
        )
        self._store.flush()
        return True

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, self._ncols)

    @property
    def nvals(self) -> int:
        return self._nvals

    @property
    def relocations(self) -> int:
        """How many row blocks have been moved to a larger capacity class."""
        return self._relocations

    def row_degree(self, i: int) -> int:
        self._check_row(i)
        return int(self._len[i])

    def memory_stats(self) -> dict:
        """Arena occupancy: how much slack the format is carrying."""
        allocated = int(self._cap.sum())
        free = sum(len(blocks) * cap for cap, blocks in self._free.items())
        return {
            "arena_size": int(self._cols.size),
            "allocated_slots": allocated,
            "filled_slots": self._nvals,
            "free_list_slots": free,
            "utilisation": (self._nvals / allocated) if allocated else 1.0,
            "relocations": self._relocations,
            "backend": self._store.backend,
            "store_bytes": self._store.nbytes(),
        }

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------

    def _check_row(self, i: int) -> None:
        if not 0 <= i < self._nrows:
            raise IndexOutOfBounds(f"row {i} out of range [0, {self._nrows})")

    def _check_col(self, j: int) -> None:
        if not 0 <= j < self._ncols:
            raise IndexOutOfBounds(f"col {j} out of range [0, {self._ncols})")

    def _row_slice(self, i: int) -> slice:
        s = self._start[i]
        return slice(s, s + self._len[i])

    def get(self, i: int, j: int, default=None):
        """Value at (i, j), or ``default`` if the entry is absent."""
        self._check_row(i)
        self._check_col(j)
        if self._len[i] == 0:
            return default
        sl = self._row_slice(i)
        hits = np.flatnonzero(self._cols[sl] == j)
        if hits.size == 0:
            return default
        return self._vals[sl][hits[0]][()]

    def __contains__(self, ij) -> bool:
        i, j = ij
        return self.get(i, j) is not None

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Copies of (column indices, values) of row ``i`` (unsorted)."""
        self._check_row(i)
        sl = self._row_slice(i)
        return self._cols[sl].copy(), self._vals[sl].copy()

    # ------------------------------------------------------------------
    # arena management
    # ------------------------------------------------------------------

    def _alloc(self, cap: int) -> int:
        """A block of capacity ``cap``: recycled if possible, else bump."""
        blocks = self._free.get(cap)
        if blocks:
            return blocks.pop()
        start = self._used
        need = start + cap
        if need > self._cols.size:
            # growth sizing is backend-independent (max of need, doubling,
            # floor 64); *how* the bytes move is the store's business --
            # allocate-and-copy on the heap, ftruncate + remap on mmap
            new_size = max(need, 2 * self._cols.size, 64)
            self._cols = self._store.resize("cols", self._cols, new_size, keep=start)
            self._vals = self._store.resize("vals", self._vals, new_size, keep=start)
        self._used = need
        return start

    def _grow_row(self, i: int) -> None:
        """Relocate row ``i`` into a block of the next capacity class."""
        old_cap = int(self._cap[i])
        new_cap = max(2 * old_cap, _MIN_CAP)
        new_start = self._alloc(new_cap)
        n = int(self._len[i])
        if n:
            old = self._row_slice(i)
            # the new block may have been recycled from this very arena;
            # copy through temporaries to be safe against overlap
            self._cols[new_start : new_start + n] = self._cols[old].copy()
            self._vals[new_start : new_start + n] = self._vals[old].copy()
        if old_cap:
            self._free.setdefault(old_cap, []).append(int(self._start[i]))
            self._relocations += 1
        self._start[i] = new_start
        self._cap[i] = new_cap

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def set_element(self, i: int, j: int, value) -> None:
        """Insert or overwrite entry (i, j) (GrB_Matrix_setElement)."""
        self._check_row(i)
        self._check_col(j)
        value = self.dtype.np_dtype.type(value)
        sl = self._row_slice(i)
        hits = np.flatnonzero(self._cols[sl] == j)
        self._dirty.add(int(i))
        if hits.size:
            self._vals[sl.start + hits[0]] = value
            return
        if self._len[i] == self._cap[i]:
            self._grow_row(i)
        pos = self._start[i] + self._len[i]
        self._cols[pos] = j
        self._vals[pos] = value
        self._len[i] += 1
        self._nvals += 1

    def remove_element(self, i: int, j: int) -> bool:
        """Delete entry (i, j); True if it existed (swap-with-last, O(1))."""
        self._check_row(i)
        self._check_col(j)
        sl = self._row_slice(i)
        hits = np.flatnonzero(self._cols[sl] == j)
        if hits.size == 0:
            return False
        pos = sl.start + hits[0]
        last = sl.stop - 1
        self._cols[pos] = self._cols[last]
        self._vals[pos] = self._vals[last]
        self._len[i] -= 1
        self._nvals -= 1
        self._dirty.add(int(i))
        return True

    def assign_coo(self, rows, cols, values, *, accum=None) -> None:
        """Bulk insert/overwrite of (row, col, value) triples.

        With ``accum`` (a BinaryOp), values combine with existing entries
        instead of overwriting -- the log-flush idiom of the social graph.
        Duplicates *within the batch* also combine under ``accum`` (they
        overwrite left-to-right without it).
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if np.isscalar(values) or getattr(values, "ndim", 1) == 0:
            values = np.full(rows.shape, values)
        values = self.dtype.cast(np.asarray(values))
        if rows.size == 0:
            return
        if rows.min() < 0 or rows.max() >= self._nrows:
            raise IndexOutOfBounds("row index out of range in assign_coo")
        if cols.min() < 0 or cols.max() >= self._ncols:
            raise IndexOutOfBounds("col index out of range in assign_coo")
        # one canonicalisation for the whole batch: row-major sort plus
        # in-batch dedup (last wins without accum), so each row segment
        # arrives at _assign_row already sorted and unique
        rows, cols, values = canonicalize_matrix(
            rows, cols, values, self._nrows, self._ncols,
            dup_op=accum if accum is not None else _ops.second,
        )
        for i, lo, hi in _row_segments(rows):
            self._assign_row(i, cols[lo:hi], values[lo:hi], accum)

    def _assign_row(self, i: int, new_cols, new_vals, accum) -> None:
        """Merge sorted, duplicate-free entries into one row (vectorised)."""
        self._dirty.add(int(i))
        n = int(self._len[i])
        s = int(self._start[i])
        if new_cols.size == 1:
            # micro-batch fast path: one entry for this row
            j = int(new_cols[0])
            hits = np.flatnonzero(self._cols[s : s + n] == j)
            if hits.size:
                k = s + int(hits[0])
                self._vals[k] = (
                    accum(self._vals[k], new_vals[0]) if accum is not None
                    else new_vals[0]
                )
                return
            if n == self._cap[i]:
                self._grow_row(i)
                s = int(self._start[i])
            self._cols[s + n] = j
            self._vals[s + n] = new_vals[0]
            self._len[i] += 1
            self._nvals += 1
            return
        if n:
            existing = self._cols[s : s + n]
            order = np.argsort(existing, kind="stable")
            sorted_exist = existing[order]
            pos = np.minimum(np.searchsorted(sorted_exist, new_cols), n - 1)
            hit = sorted_exist[pos] == new_cols
        else:
            hit = np.zeros(new_cols.shape, dtype=np.bool_)
        if hit.any():
            # overwrite / accumulate the hits in place
            targets = s + order[pos[hit]]
            if accum is None:
                self._vals[targets] = new_vals[hit]
            else:
                self._vals[targets] = accum(self._vals[targets], new_vals[hit])
        # append the misses, growing as needed
        miss_cols, miss_vals = new_cols[~hit], new_vals[~hit]
        n_new = int(miss_cols.size)
        if n_new == 0:
            return
        while self._len[i] + n_new > self._cap[i]:
            self._grow_row(i)
        pos = int(self._start[i] + self._len[i])
        self._cols[pos : pos + n_new] = miss_cols
        self._vals[pos : pos + n_new] = miss_vals
        self._len[i] += n_new
        self._nvals += n_new

    def remove_coo(self, rows, cols) -> int:
        """Bulk element removal: drop stored entries at the given positions.

        Positions with no stored entry are ignored (idempotent), matching
        :meth:`Matrix.remove_coo`.  Returns the number of entries removed.
        Each touched row is compacted in one vectorised pass -- O(degree)
        per row, independent of total nnz.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise DimensionMismatch(
                f"remove_coo arrays must have equal length, got "
                f"{rows.shape} and {cols.shape}"
            )
        if rows.size == 0 or self._nvals == 0:
            return 0
        if rows.min() < 0 or rows.max() >= self._nrows:
            raise IndexOutOfBounds("row index out of range in remove_coo")
        if cols.min() < 0 or cols.max() >= self._ncols:
            raise IndexOutOfBounds("col index out of range in remove_coo")
        order = np.argsort(rows, kind="stable")
        rows, cols = rows[order], cols[order]
        removed = 0
        for i, lo, hi in _row_segments(rows):
            removed += self._remove_row(i, cols[lo:hi])
        return removed

    def _remove_row(self, i: int, rm_cols: np.ndarray) -> int:
        """Drop a batch of entries from one row; compacts the block."""
        n = int(self._len[i])
        if n == 0:
            return 0
        s = int(self._start[i])
        existing = self._cols[s : s + n]
        doomed = np.isin(existing, rm_cols)
        k = int(doomed.sum())
        if k == 0:
            return 0
        keep = ~doomed
        self._cols[s : s + n - k] = existing[keep]
        self._vals[s : s + n - k] = self._vals[s : s + n][keep]
        self._len[i] = n - k
        self._nvals -= k
        self._dirty.add(int(i))
        return k

    def resize(self, nrows: int, ncols: int) -> None:
        """Grow the logical dimensions (GxB_Matrix_resize, grow-only)."""
        if nrows == self._nrows and ncols == self._ncols:
            return
        if nrows < self._nrows or ncols < self._ncols:
            raise DimensionMismatch(
                f"DynamicMatrix.resize only grows: {self.shape} -> {(nrows, ncols)}"
            )
        if nrows > self._nrows:
            old = self._nrows
            self._start = self._store.resize("start", self._start, nrows, keep=old, fill=-1)
            self._len = self._store.resize("len", self._len, nrows, keep=old)
            self._cap = self._store.resize("cap", self._cap, nrows, keep=old)
            self._nrows = nrows
        self._ncols = ncols

    def compact(self) -> None:
        """Rebuild the arena with zero slack (defragmentation).

        A physical-layout operation: logical content, the maintained
        frozen view, the dirty-row set and the cumulative relocation
        counter are all preserved (so compact -> mutate -> freeze behaves
        exactly like the never-compacted matrix -- pinned by
        ``tests/storage/test_compact_property.py``).  The copy list is
        derived from ``__slots__`` minus :data:`_COMPACT_PRESERVES`, so a
        newly added field must be *deliberately* classified rather than
        silently dropped.
        """
        fresh = DynamicMatrix.from_matrix(self.to_matrix())
        for slot in type(self).__slots__:
            if slot in self._COMPACT_PRESERVES:
                continue
            if slot in self._ARRAY_SLOTS:
                src = getattr(fresh, slot)
                arr = self._store.resize(
                    self._ARRAY_SLOTS[slot], getattr(self, slot), src.size, keep=0
                )
                arr[:] = src
                setattr(self, slot, arr)
            else:
                setattr(self, slot, getattr(fresh, slot))

    # ------------------------------------------------------------------
    # conversion / iteration
    # ------------------------------------------------------------------

    def _gather_rows(self, row_ids: np.ndarray):
        """Canonical (row-major, col-sorted) entries of the given sorted rows.

        One vectorised gather plus a single argsort over encoded keys --
        no per-row Python loop.
        """
        lens = self._len[row_ids]
        total = int(lens.sum())
        empty_v = np.zeros(0, dtype=self.dtype.np_dtype)
        if total == 0:
            return np.zeros(0, np.int64), np.zeros(0, np.int64), empty_v
        rows = np.repeat(row_ids, lens)
        out_starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
        within = np.arange(total, dtype=np.int64) - np.repeat(out_starts, lens)
        entry_idx = np.repeat(self._start[row_ids], lens) + within
        cols = self._cols[entry_idx]
        vals = self._vals[entry_idx]
        # rows are already grouped in ascending order; the key argsort fixes
        # the (unsorted) column order inside each row
        order = np.argsort(rows * np.int64(self._ncols) + cols, kind="stable")
        return rows[order], cols[order], vals[order]

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, values) in canonical (row-major sorted) order."""
        if self._nvals == 0:
            return (
                np.zeros(0, np.int64),
                np.zeros(0, np.int64),
                np.zeros(0, dtype=self.dtype.np_dtype),
            )
        return self._gather_rows(np.flatnonzero(self._len))

    def to_matrix(self) -> Matrix:
        """Freeze into a *fresh* immutable compute Matrix."""
        rows, cols, vals = self.to_coo()
        return Matrix.from_coo(
            rows, cols, vals, self._nrows, self._ncols, dtype=self.dtype
        )

    def freeze(self) -> Matrix:
        """The maintained canonical compute view (phase-boundary freeze).

        Unlike :meth:`to_matrix` this returns the *same* :class:`Matrix`
        object across calls while the storage is unchanged -- preserving its
        cached ``indptr`` and transpose -- and after mutations only the rows
        touched since the last freeze are re-canonicalised and spliced in
        (O(nnz) copies, no global sort; the fresh ``indptr`` falls out of
        the splice for free).  The returned matrix is owned by this object:
        it is mutated in place by later freezes, exactly like the matrices
        a flushing :class:`~repro.model.graph.SocialGraph` serves.
        """
        f = self._frozen
        if f is None:
            f = self._frozen = self.to_matrix()
            self._dirty.clear()
            return f
        if f.shape != self.shape:
            f.resize(self._nrows, self._ncols)
        if self._dirty:
            dirty = np.fromiter(self._dirty, np.int64, len(self._dirty))
            dirty.sort()
            d_rows, d_cols, d_vals = self._gather_rows(dirty)
            r, c, v, indptr = merge_dirty_rows(
                f._rows, f._cols, f._values, f.indptr, self._nrows,
                dirty, d_rows, d_cols, d_vals,
            )
            f._set(r, c, v)
            f._cache["indptr"] = indptr
            self._dirty.clear()
        return f

    def items(self) -> Iterator[tuple[int, int, object]]:
        rows, cols, vals = self.to_coo()
        yield from zip(rows.tolist(), cols.tolist(), vals.tolist())

    def isequal(self, other) -> bool:
        """Structural and value equality against Matrix or DynamicMatrix."""
        if self.shape != other.shape or self.nvals != other.nvals:
            return False
        a = self.to_coo()
        b = other.to_coo()
        return all(np.array_equal(x, y) for x, y in zip(a, b))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DynamicMatrix {self._nrows}x{self._ncols} {self.dtype.name} "
            f"nvals={self._nvals} util={self.memory_stats()['utilisation']:.2f}>"
        )
