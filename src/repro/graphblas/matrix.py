"""The GraphBLAS Matrix: a typed sparse matrix in canonical row-major COO.

Canonical COO (row-major sorted, unique) doubles as CSR; the ``indptr`` and
the transpose are derived lazily and cached, invalidated on any mutation.
All Table-I operations of the paper are methods here, each accepting the
standard ``out``/``mask``/``accum``/``desc`` modifiers with spec-exact
two-phase write semantics.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring_mod
from repro.graphblas import types as _types
from repro.graphblas._kernels.coo import canonicalize_matrix, decode, encode
from repro.graphblas._kernels.csr import (
    extract_submatrix,
    indptr_from_rows,
    transpose as _transpose_kernel,
)
from repro.graphblas._kernels.merge import (
    intersect_merge,
    union_merge,
    write_mask_accum,
)
from repro.graphblas._kernels.reduce import reduce_rows
from repro.graphblas._kernels.spgemm import mxm as _mxm_kernel
from repro.graphblas._kernels.spmv import mxv as _mxv_kernel
from repro.graphblas.descriptor import NULL as _NULL_DESC
from repro.graphblas.mask import mask_true_keys, resolve_mask
from repro.graphblas.vector import Vector
from repro.util.validation import (
    DimensionMismatch,
    check_in_range,
    check_index_array,
    check_positive,
)

__all__ = ["Matrix"]


class Matrix:
    """Sparse matrix of a fixed GraphBLAS type."""

    __slots__ = ("dtype", "_nrows", "_ncols", "_rows", "_cols", "_values", "_cache")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def __init__(self, dtype, nrows: int, ncols: int):
        self.dtype = _types.lookup(dtype)
        self._nrows = check_positive(nrows, "nrows")
        self._ncols = check_positive(ncols, "ncols")
        self._rows = np.zeros(0, dtype=np.int64)
        self._cols = np.zeros(0, dtype=np.int64)
        self._values = np.zeros(0, dtype=self.dtype.np_dtype)
        self._cache: dict = {}

    @classmethod
    def sparse(cls, dtype, nrows: int, ncols: int) -> "Matrix":
        """Empty matrix (GrB_Matrix_new)."""
        return cls(dtype, nrows, ncols)

    @classmethod
    def from_coo(
        cls, rows, cols, values, nrows: int, ncols: int, dtype=None, dup_op=None
    ) -> "Matrix":
        """Build from (row, col, value) triples (GrB_Matrix_build).

        ``values`` may be a scalar (broadcast).  Duplicate positions require
        ``dup_op`` to combine them.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        if np.isscalar(values) or getattr(values, "ndim", 1) == 0:
            values = np.full(rows.shape, values)
        else:
            values = np.asarray(values)
        if dtype is None:
            dtype = _types.from_numpy(values.dtype)
        m = cls(dtype, nrows, ncols)
        check_index_array(rows, nrows, "rows")
        check_index_array(cols, ncols, "cols")
        r, c, v = canonicalize_matrix(rows, cols, values, nrows, ncols, dup_op=dup_op)
        m._set(r, c, m.dtype.cast(v))
        return m

    @classmethod
    def from_dense(cls, array, dtype=None) -> "Matrix":
        """Dense 2-D array -> matrix; *nonzero* positions become entries."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise DimensionMismatch(f"expected 2-D array, got shape {arr.shape}")
        if dtype is None:
            dtype = _types.from_numpy(arr.dtype)
        r, c = np.nonzero(arr)
        return cls.from_coo(r, c, arr[r, c], arr.shape[0], arr.shape[1], dtype=dtype)

    @classmethod
    def from_scipy(cls, sp_matrix, dtype=None) -> "Matrix":
        """Adopt a SciPy sparse matrix (explicit zeros preserved)."""
        coo = sp_matrix.tocoo()
        if dtype is None:
            dtype = _types.from_numpy(coo.data.dtype)
        m = cls(dtype, *coo.shape)
        r, c, v = canonicalize_matrix(
            coo.row.astype(np.int64),
            coo.col.astype(np.int64),
            coo.data,
            coo.shape[0],
            coo.shape[1],
            dup_op=_ops.plus,
        )
        m._set(r, c, m.dtype.cast(v))
        return m

    def _set(self, rows, cols, values) -> None:
        """Install canonical arrays and drop caches (internal)."""
        self._rows = rows
        self._cols = cols
        self._values = values
        self._cache.clear()

    def _coo_tuple(self):
        return (self._rows, self._cols, self._values, self._nrows, self._ncols)

    # ------------------------------------------------------------------
    # properties / element access
    # ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def shape(self) -> tuple[int, int]:
        return (self._nrows, self._ncols)

    @property
    def nvals(self) -> int:
        return int(self._rows.size)

    @property
    def indptr(self) -> np.ndarray:
        """Cached CSR row pointer."""
        ip = self._cache.get("indptr")
        if ip is None:
            ip = indptr_from_rows(self._rows, self._nrows)
            self._cache["indptr"] = ip
        return ip

    @property
    def T(self) -> "Matrix":
        """Cached materialised transpose (invalidated on mutation)."""
        t = self._cache.get("transpose")
        if t is None:
            t = self.transpose()
            self._cache["transpose"] = t
        return t

    def get(self, i: int, j: int, default=None):
        i = check_in_range(i, self._nrows, "row")
        j = check_in_range(j, self._ncols, "col")
        key = np.int64(i) * self._ncols + j
        keys = encode(self._rows, self._cols, self._ncols)
        pos = np.searchsorted(keys, key)
        if pos < keys.size and keys[pos] == key:
            return self._values[pos][()]
        return default

    def __getitem__(self, ij):
        val = self.get(*ij)
        if val is None:
            raise KeyError(f"no entry at {ij}")
        return val

    def __setitem__(self, ij, value) -> None:
        """GrB_Matrix_setElement."""
        i, j = ij
        i = check_in_range(i, self._nrows, "row")
        j = check_in_range(j, self._ncols, "col")
        keys = encode(self._rows, self._cols, self._ncols)
        key = np.int64(i) * self._ncols + j
        pos = int(np.searchsorted(keys, key))
        cast = self.dtype.np_dtype.type(value)
        if pos < keys.size and keys[pos] == key:
            vals = self._values.copy()
            vals[pos] = cast
            self._set(self._rows, self._cols, vals)
        else:
            self._set(
                np.insert(self._rows, pos, i),
                np.insert(self._cols, pos, j),
                np.insert(self._values, pos, cast),
            )

    def remove_element(self, i: int, j: int) -> None:
        keys = encode(self._rows, self._cols, self._ncols)
        key = np.int64(i) * self._ncols + j
        pos = np.searchsorted(keys, key)
        if pos < keys.size and keys[pos] == key:
            self._set(
                np.delete(self._rows, pos),
                np.delete(self._cols, pos),
                np.delete(self._values, pos),
            )

    def items(self) -> Iterator[tuple[int, int, object]]:
        for r, c, v in zip(
            self._rows.tolist(), self._cols.tolist(), self._values.tolist()
        ):
            yield r, c, v

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------

    def to_coo(self):
        """GrB_Matrix_extractTuples."""
        return self._rows.copy(), self._cols.copy(), self._values.copy()

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full((self._nrows, self._ncols), fill, dtype=self.dtype.np_dtype)
        out[self._rows, self._cols] = self._values
        return out

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.csr_matrix(
            (self._values, (self._rows, self._cols)), shape=self.shape
        )

    def dup(self, dtype=None) -> "Matrix":
        dtype = self.dtype if dtype is None else _types.lookup(dtype)
        m = Matrix(dtype, self._nrows, self._ncols)
        m._set(self._rows.copy(), self._cols.copy(), dtype.cast(self._values).copy())
        return m

    def clear(self) -> None:
        self._set(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=self.dtype.np_dtype),
        )

    def resize(self, nrows: int, ncols: int) -> None:
        """GrB_Matrix_resize; shrinking drops out-of-range entries.

        A same-dimensions call is a strict no-op: it must not invalidate the
        cached ``indptr``/transpose (the serving layer's flush-on-read calls
        this on every property access).  On pure growth the cached ``indptr``
        stays valid too -- it is extended in place instead of dropped.
        """
        nrows = check_positive(nrows, "nrows")
        ncols = check_positive(ncols, "ncols")
        if nrows == self._nrows and ncols == self._ncols:
            return
        if nrows < self._nrows or ncols < self._ncols:
            keep = (self._rows < nrows) & (self._cols < ncols)
            self._set(self._rows[keep], self._cols[keep], self._values[keep])
        else:
            ip = self._cache.get("indptr")
            self._cache.clear()
            if ip is not None:
                self._cache["indptr"] = np.concatenate(
                    [ip, np.full(nrows - self._nrows, ip[-1], dtype=np.int64)]
                )
        self._nrows = nrows
        self._ncols = ncols

    # ------------------------------------------------------------------
    # write phase
    # ------------------------------------------------------------------

    def _finalize(self, t_rows, t_cols, t_vals, out, mask, accum, desc, result_dtype):
        desc = desc or _NULL_DESC
        if out is None:
            out = Matrix(result_dtype, self._nrows, self._ncols)
        if out.shape != (self._nrows, self._ncols):
            raise DimensionMismatch(
                f"out has shape {out.shape}, expected {(self._nrows, self._ncols)}"
            )
        minfo = resolve_mask(mask, desc)
        mask_keys = None
        comp = False
        if minfo is not None:
            parent, comp, struct = minfo
            if not isinstance(parent, Matrix) or parent.shape != out.shape:
                raise DimensionMismatch("mask must be a Matrix of matching shape")
            mask_keys = mask_true_keys(parent, struct)
        c_keys = encode(out._rows, out._cols, self._ncols)
        t_keys = encode(t_rows, t_cols, self._ncols)
        keys, vals = write_mask_accum(
            c_keys,
            out._values,
            t_keys,
            t_vals,
            mask_keys=mask_keys,
            mask_complement=comp,
            replace=desc.replace,
            accum=accum,
        )
        r, c = decode(keys, self._ncols)
        out._set(r, c, out.dtype.cast(vals))
        return out

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _input(self, transpose_flag: bool) -> "Matrix":
        return self.T if transpose_flag else self

    def mxm(self, other: "Matrix", semiring, *, out=None, mask=None, accum=None, desc=None) -> "Matrix":
        """``C<M> = A ⊕.⊗ B`` (GrB_mxm)."""
        desc = desc or _NULL_DESC
        a = self._input(desc.transpose_a)
        b = other._input(desc.transpose_b)
        if a.ncols != b.nrows:
            raise DimensionMismatch(
                f"mxm: A is {a.shape}, B is {b.shape} (inner dims differ)"
            )
        t_rows, t_cols, t_vals = _mxm_kernel(a._coo_tuple(), b._coo_tuple(), semiring)
        res_dtype = semiring.output_dtype(self.dtype, other.dtype)
        res = Matrix(res_dtype, a.nrows, b.ncols)
        return res._finalize(t_rows, t_cols, t_vals, out, mask, accum, desc, res_dtype)

    def mxv(self, vector: Vector, semiring, *, out=None, mask=None, accum=None, desc=None) -> Vector:
        """``w<m> = A ⊕.⊗ u`` (GrB_mxv)."""
        desc = desc or _NULL_DESC
        a = self._input(desc.transpose_a)
        t_idx, t_vals = _mxv_kernel(
            a._coo_tuple(),
            (vector._indices, vector._values, vector.size),
            semiring,
            indptr=a._cache.get("indptr"),
        )
        res_dtype = semiring.output_dtype(self.dtype, vector.dtype)
        res = Vector(res_dtype, a.nrows)
        return res._finalize(t_idx, t_vals, out, mask, accum, desc, res_dtype)

    def ewise_add(self, other: "Matrix", op, *, out=None, mask=None, accum=None, desc=None) -> "Matrix":
        """Set-union elementwise combine (GrB_eWiseAdd)."""
        desc = desc or _NULL_DESC
        a = self._input(desc.transpose_a)
        b = other._input(desc.transpose_b)
        a._check_same_shape(b)
        ka = encode(a._rows, a._cols, a._ncols)
        kb = encode(b._rows, b._cols, b._ncols)
        keys, vals = union_merge(ka, a._values, kb, b._values, op)
        r, c = decode(keys, a._ncols)
        return a._finalize(r, c, vals, out, mask, accum, desc, a._result_dtype(op, b))

    def ewise_mult(self, other: "Matrix", op, *, out=None, mask=None, accum=None, desc=None) -> "Matrix":
        """Set-intersection elementwise combine (GrB_eWiseMult)."""
        desc = desc or _NULL_DESC
        a = self._input(desc.transpose_a)
        b = other._input(desc.transpose_b)
        a._check_same_shape(b)
        ka = encode(a._rows, a._cols, a._ncols)
        kb = encode(b._rows, b._cols, b._ncols)
        keys, vals = intersect_merge(ka, a._values, kb, b._values, op)
        r, c = decode(keys, a._ncols)
        return a._finalize(r, c, vals, out, mask, accum, desc, a._result_dtype(op, b))

    def apply(self, op, *, out=None, mask=None, accum=None, desc=None, dtype=None) -> "Matrix":
        """Elementwise unary map over stored values (GrB_apply)."""
        vals = np.asarray(op(self._values))
        if dtype is None:
            dtype = _types.BOOL if op.bool_result else self.dtype
        else:
            dtype = _types.lookup(dtype)
        return self._finalize(
            self._rows.copy(), self._cols.copy(), vals, out, mask, accum, desc, dtype
        )

    def select(self, op, thunk=None, *, out=None, mask=None, accum=None, desc=None) -> "Matrix":
        """Keep entries passing an index-unary predicate (GxB_select)."""
        keep = op(self._values, self._rows, self._cols, thunk)
        return self._finalize(
            self._rows[keep],
            self._cols[keep],
            self._values[keep],
            out,
            mask,
            accum,
            desc,
            self.dtype,
        )

    def reduce_vector(self, monoid, *, out=None, mask=None, accum=None, desc=None, dtype=None) -> Vector:
        """Row-wise reduction ``w = [⊕_j A(:, j)]`` (GrB_reduce to vector).

        With ``desc.transpose_a`` this reduces columns instead.  ``dtype``
        selects the typed monoid, as in ``GrB_PLUS_MONOID_INT64``: values are
        cast before reduction (reducing a BOOL matrix with the plus monoid at
        INT64 *counts* entries rather than OR-ing them).
        """
        desc = desc or _NULL_DESC
        a = self._input(desc.transpose_a)
        rdtype = self.dtype if dtype is None else _types.lookup(dtype)
        t_idx, t_vals = reduce_rows(
            a._rows, rdtype.cast(a._values), monoid, indptr=a._cache.get("indptr")
        )
        res = Vector(rdtype, a.nrows)
        return res._finalize(t_idx, t_vals, out, mask, accum, desc, rdtype)

    def reduce_scalar(self, monoid, *, dtype=None):
        """Reduce every stored value to one scalar (GrB_reduce to scalar)."""
        rdtype = self.dtype if dtype is None else _types.lookup(dtype)
        return monoid.reduce_array(rdtype.cast(self._values), rdtype)

    def transpose(self, *, out=None, mask=None, accum=None, desc=None) -> "Matrix":
        """``C = A'`` (GrB_transpose)."""
        r, c, v = _transpose_kernel(
            self._rows, self._cols, self._values, self._nrows, self._ncols
        )
        res = Matrix(self.dtype, self._ncols, self._nrows)
        return res._finalize(r, c, v, out, mask, accum, desc, self.dtype)

    def extract(self, row_ids=None, col_ids=None, *, out=None, mask=None, accum=None, desc=None) -> "Matrix":
        """``C = A(I, J)`` (GrB_extract); ``None`` means GrB_ALL."""
        desc = desc or _NULL_DESC
        a = self._input(desc.transpose_a)
        if row_ids is None:
            row_ids = np.arange(a.nrows, dtype=np.int64)
        else:
            row_ids = check_index_array(row_ids, a.nrows, "row_ids")
        if col_ids is None:
            col_ids = np.arange(a.ncols, dtype=np.int64)
        else:
            col_ids = check_index_array(col_ids, a.ncols, "col_ids")
        r, c, v = extract_submatrix(
            a._rows, a._cols, a._values, a.nrows, a.ncols, row_ids, col_ids
        )
        res = Matrix(self.dtype, row_ids.size, col_ids.size)
        return res._finalize(r, c, v, out, mask, accum, desc, self.dtype)

    def extract_row(self, i: int) -> Vector:
        """Row ``i`` as a Vector (GrB_Col_extract on the transpose)."""
        i = check_in_range(i, self._nrows, "row")
        ip = self.indptr
        lo, hi = int(ip[i]), int(ip[i + 1])
        v = Vector(self.dtype, self._ncols)
        v._set(self._cols[lo:hi].copy(), self._values[lo:hi].copy())
        return v

    def extract_col(self, j: int) -> Vector:
        """Column ``j`` as a Vector."""
        return self.T.extract_row(j)

    def assign(self, a: "Matrix", row_ids=None, col_ids=None, *, mask=None, accum=None, desc=None) -> "Matrix":
        """``C(I, J)<M> accum= A`` (GrB_assign); mutates and returns ``self``.

        ``None`` index sets mean GrB_ALL.  Without ``accum`` the I x J region
        is overwritten (stored entries of C inside the region but absent from
        A are deleted); the mask and the ``replace`` descriptor flag apply to
        the *whole* of C, per the GrB_assign (not subassign) semantics.
        """
        from repro.graphblas._kernels.assign import (
            assign_submatrix_z,
            check_unique_ids,
        )

        desc = desc or _NULL_DESC
        if row_ids is None:
            row_ids = np.arange(self._nrows, dtype=np.int64)
        else:
            row_ids = check_unique_ids(
                check_index_array(row_ids, self._nrows, "row_ids"), "row_ids"
            )
        if col_ids is None:
            col_ids = np.arange(self._ncols, dtype=np.int64)
        else:
            col_ids = check_unique_ids(
                check_index_array(col_ids, self._ncols, "col_ids"), "col_ids"
            )
        if a.shape != (row_ids.size, col_ids.size):
            raise DimensionMismatch(
                f"assign: A has shape {a.shape}, region is "
                f"{(row_ids.size, col_ids.size)}"
            )
        z_keys, z_vals = assign_submatrix_z(
            self._coo_tuple()[:3], a._coo_tuple()[:3], row_ids, col_ids, accum, self._ncols
        )
        r, c = decode(z_keys, self._ncols)
        # Mask/replace phase over all of C (accum already folded into Z).
        return self._finalize(r, c, z_vals, self, mask, None, desc, self.dtype)

    def kronecker(self, other: "Matrix", op, *, out=None, mask=None, accum=None, desc=None) -> "Matrix":
        """Kronecker product ``C = A kron B`` under ``op`` (GrB_kronecker).

        Entry ``A(i,j) op B(k,l)`` lands at ``(i*B.nrows + k, j*B.ncols + l)``.
        Cost is Theta(nvals(A) * nvals(B)), inherent to the operation.
        """
        from repro.graphblas._kernels.coo import check_key_space

        nr, nc = self._nrows * other._nrows, self._ncols * other._ncols
        check_key_space(nr, nc)
        t_rows = (self._rows[:, None] * other._nrows + other._rows[None, :]).ravel()
        t_cols = (self._cols[:, None] * other._ncols + other._cols[None, :]).ravel()
        t_vals = np.asarray(
            op(
                np.repeat(self._values, other._values.size),
                np.tile(other._values, self._values.size),
            )
        )
        order = np.argsort(encode(t_rows, t_cols, nc), kind="stable")
        res_dtype = self._result_dtype(op, other)
        res = Matrix(res_dtype, nr, nc)
        return res._finalize(
            t_rows[order], t_cols[order], t_vals[order], out, mask, accum, desc, res_dtype
        )

    def apply_index(self, op, thunk=None, *, out=None, mask=None, accum=None, desc=None, dtype=None) -> "Matrix":
        """Positional apply (GrB_apply with an IndexUnaryOp such as ROWINDEX)."""
        vals = op(self._values, self._rows, self._cols, thunk)
        if dtype is None:
            dtype = _types.from_numpy(vals.dtype)
        else:
            dtype = _types.lookup(dtype)
        return self._finalize(
            self._rows.copy(), self._cols.copy(), vals, out, mask, accum, desc, dtype
        )

    def diagonal(self, k: int = 0) -> Vector:
        """Diagonal ``k`` as a Vector (GxB_Vector_diag): entry ``i`` is A(i, i+k)."""
        size = (
            min(self._nrows, self._ncols - k)
            if k >= 0
            else min(self._nrows + k, self._ncols)
        )
        if size <= 0:
            raise DimensionMismatch(
                f"diagonal {k} of a {self.shape} matrix is empty"
            )
        on_diag = self._cols == self._rows + k
        idx = self._rows[on_diag] if k >= 0 else self._cols[on_diag]
        v = Vector(self.dtype, size)
        v._set(idx.copy(), self._values[on_diag].copy())
        return v

    def power(self, n: int, semiring) -> "Matrix":
        """``A^n`` under a semiring by repeated squaring; requires square A."""
        if self._nrows != self._ncols:
            raise DimensionMismatch(f"power requires a square matrix, got {self.shape}")
        if n < 1:
            raise ValueError("power requires n >= 1 (no semiring identity matrix)")
        result = None
        base = self
        while n:
            if n & 1:
                result = base if result is None else result.mxm(base, semiring)
            n >>= 1
            if n:
                base = base.mxm(base, semiring)
        return result.dup() if result is self else result

    def assign_coo(self, rows, cols, values, *, accum=None) -> "Matrix":
        """Batch element insert/update: ``C(i,j) accum= v`` for given triples.

        This is the workhorse for applying graph updates (new edges).  Without
        ``accum`` new values overwrite existing entries ("second" semantics);
        duplicates inside the batch are also resolved last-wins.  Mutates and
        returns ``self``.
        """
        rows = check_index_array(rows, self._nrows, "rows")
        cols = check_index_array(cols, self._ncols, "cols")
        if np.isscalar(values) or getattr(values, "ndim", 1) == 0:
            values = np.full(rows.shape, values)
        values = self.dtype.cast(np.asarray(values))
        dup = accum if accum is not None else _ops.second
        r, c, v = canonicalize_matrix(
            rows, cols, values, self._nrows, self._ncols, dup_op=dup
        )
        ka = encode(self._rows, self._cols, self._ncols)
        kb = encode(r, c, self._ncols)
        op = accum if accum is not None else _ops.second
        keys, vals = union_merge(ka, self._values, kb, v, op)
        rr, cc = decode(keys, self._ncols)
        self._set(rr, cc, self.dtype.cast(vals))
        return self

    def remove_coo(self, rows, cols) -> "Matrix":
        """Batch element removal: drop any stored entry at the given positions.

        Positions with no stored entry are ignored (idempotent), matching a
        batched ``GrB_Matrix_removeElement``.  Mutates and returns ``self``.
        """
        rows = check_index_array(rows, self._nrows, "rows")
        cols = check_index_array(cols, self._ncols, "cols")
        if rows.size == 0 or self.nvals == 0:
            return self
        from repro.graphblas._kernels.coo import in1d_sorted

        doomed = np.unique(encode(rows, cols, self._ncols))
        keys = encode(self._rows, self._cols, self._ncols)
        keep = ~in1d_sorted(keys, doomed)
        self._set(self._rows[keep], self._cols[keep], self._values[keep])
        return self

    # ------------------------------------------------------------------
    # comparison / helpers
    # ------------------------------------------------------------------

    def isequal(self, other: "Matrix") -> bool:
        return (
            isinstance(other, Matrix)
            and self.shape == other.shape
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.array_equal(self._values, other._values)
        )

    def _check_same_shape(self, other: "Matrix") -> None:
        if not isinstance(other, Matrix):
            raise TypeError(f"expected Matrix, got {type(other)}")
        if other.shape != self.shape:
            raise DimensionMismatch(
                f"matrix shapes differ: {self.shape} vs {other.shape}"
            )

    def _result_dtype(self, op, other: "Matrix"):
        if op.bool_result:
            return _types.BOOL
        if op.name == "first":
            return self.dtype
        if op.name == "second":
            return other.dtype
        if op.name == "pair":
            return _types.INT64
        return _types.promote(self.dtype, other.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Matrix<{self.dtype.name}, shape={self.shape}, nvals={self.nvals}>"
        )
