"""GraphBLAS data types.

The GraphBLAS C API defines eleven built-in scalar types (``GrB_BOOL``,
``GrB_INT8`` ... ``GrB_FP64``).  Here each is a :class:`DataType` wrapping the
corresponding NumPy dtype.  All stored values in :class:`~repro.graphblas.Matrix`
and :class:`~repro.graphblas.Vector` objects are NumPy arrays of the wrapped
dtype, so casting rules follow NumPy with one GraphBLAS-specific addition:
:func:`promote` maps the NumPy promotion result back onto a registered type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DataType",
    "BOOL",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "UINT8",
    "UINT16",
    "UINT32",
    "UINT64",
    "FP32",
    "FP64",
    "ALL_TYPES",
    "from_numpy",
    "promote",
    "lookup",
]


@dataclass(frozen=True)
class DataType:
    """A GraphBLAS scalar type backed by a NumPy dtype."""

    name: str
    np_dtype: np.dtype

    @property
    def is_bool(self) -> bool:
        return self.np_dtype == np.bool_

    @property
    def is_integer(self) -> bool:
        return np.issubdtype(self.np_dtype, np.integer)

    @property
    def is_signed(self) -> bool:
        return np.issubdtype(self.np_dtype, np.signedinteger)

    @property
    def is_float(self) -> bool:
        return np.issubdtype(self.np_dtype, np.floating)

    def zero(self):
        """The additive-identity-flavoured default value of this type."""
        return self.np_dtype.type(0)

    def one(self):
        return self.np_dtype.type(1)

    def cast(self, values) -> np.ndarray:
        """Cast an array-like to this type (GraphBLAS typecast semantics).

        Float -> integer casts truncate toward zero as in C, which is what
        ``ndarray.astype`` does.  Anything -> BOOL is a != 0 test.
        """
        arr = np.asarray(values)
        if self.is_bool and arr.dtype != np.bool_:
            return arr != 0
        return arr.astype(self.np_dtype, copy=False)

    def min_value(self):
        """Smallest representable value (identity for MAX monoids)."""
        if self.is_bool:
            return np.bool_(False)
        if self.is_integer:
            return np.iinfo(self.np_dtype).min
        return -np.inf

    def max_value(self):
        """Largest representable value (identity for MIN monoids)."""
        if self.is_bool:
            return np.bool_(True)
        if self.is_integer:
            return np.iinfo(self.np_dtype).max
        return np.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType({self.name})"


BOOL = DataType("BOOL", np.dtype(np.bool_))
INT8 = DataType("INT8", np.dtype(np.int8))
INT16 = DataType("INT16", np.dtype(np.int16))
INT32 = DataType("INT32", np.dtype(np.int32))
INT64 = DataType("INT64", np.dtype(np.int64))
UINT8 = DataType("UINT8", np.dtype(np.uint8))
UINT16 = DataType("UINT16", np.dtype(np.uint16))
UINT32 = DataType("UINT32", np.dtype(np.uint32))
UINT64 = DataType("UINT64", np.dtype(np.uint64))
FP32 = DataType("FP32", np.dtype(np.float32))
FP64 = DataType("FP64", np.dtype(np.float64))

ALL_TYPES = (
    BOOL,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FP32,
    FP64,
)

_BY_NP = {t.np_dtype: t for t in ALL_TYPES}
_BY_NAME = {t.name: t for t in ALL_TYPES}


def from_numpy(dtype) -> DataType:
    """Map a NumPy dtype (or anything np.dtype accepts) to a DataType."""
    dt = np.dtype(dtype)
    try:
        return _BY_NP[dt]
    except KeyError:
        raise TypeError(f"no GraphBLAS type for numpy dtype {dt}") from None


def lookup(spec) -> DataType:
    """Resolve a DataType from a DataType, name string, or numpy dtype."""
    if isinstance(spec, DataType):
        return spec
    if isinstance(spec, str) and spec.upper() in _BY_NAME:
        return _BY_NAME[spec.upper()]
    return from_numpy(spec)


def promote(a: DataType, b: DataType) -> DataType:
    """GraphBLAS-style type promotion via NumPy's rules.

    ``promote(INT32, FP32) == FP64`` follows NumPy (int32+float32 -> float64),
    which is a superset of the precision the C API guarantees.
    """
    return from_numpy(np.promote_types(a.np_dtype, b.np_dtype))
