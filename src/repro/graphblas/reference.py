"""Dict-of-keys reference oracle for the GraphBLAS semantics.

This module re-implements the core operations in the most obviously-correct
way possible -- Python dicts keyed by positions, explicit loops -- so the
vectorised kernels can be property-tested against it.  It is intentionally
slow and lives outside any hot path; only the test-suite imports it.

Objects are plain dicts: a vector is ``{i: value}``, a matrix is
``{(i, j): value}``.  Every function mirrors the corresponding kernel's
contract, including mask/accumulator/replace write semantics.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = [
    "ewise_add",
    "ewise_mult",
    "mxm",
    "mxv",
    "vxm",
    "reduce_rowwise",
    "reduce_all",
    "apply",
    "select_vector",
    "select_matrix",
    "extract_matrix",
    "assign_matrix",
    "kron",
    "apply_index_matrix",
    "write",
]


def ewise_add(a: dict, b: dict, op: Callable) -> dict:
    out = {}
    for k in set(a) | set(b):
        if k in a and k in b:
            out[k] = op(a[k], b[k])
        elif k in a:
            out[k] = a[k]
        else:
            out[k] = b[k]
    return out


def ewise_mult(a: dict, b: dict, op: Callable) -> dict:
    return {k: op(a[k], b[k]) for k in set(a) & set(b)}


def mxm(a: dict, b: dict, add: Callable, mult: Callable) -> dict:
    """C = A ⊕.⊗ B on {(i,k): v} dicts."""
    out: dict = {}
    b_by_row: dict = {}
    for (k, j), v in b.items():
        b_by_row.setdefault(k, []).append((j, v))
    for (i, k), av in a.items():
        for j, bv in b_by_row.get(k, ()):
            prod = mult(av, bv)
            key = (i, j)
            out[key] = add(out[key], prod) if key in out else prod
    return out


def mxv(a: dict, u: dict, add: Callable, mult: Callable) -> dict:
    out: dict = {}
    for (i, j), av in a.items():
        if j in u:
            prod = mult(av, u[j])
            out[i] = add(out[i], prod) if i in out else prod
    return out


def vxm(u: dict, a: dict, add: Callable, mult: Callable) -> dict:
    out: dict = {}
    for (i, j), av in a.items():
        if i in u:
            prod = mult(u[i], av)
            out[j] = add(out[j], prod) if j in out else prod
    return out


def reduce_rowwise(a: dict, add: Callable) -> dict:
    out: dict = {}
    for (i, _j), v in a.items():
        out[i] = add(out[i], v) if i in out else v
    return out


def reduce_all(a: dict, add: Callable, identity):
    acc = identity
    for v in a.values():
        acc = add(acc, v)
    return acc


def apply(a: dict, fn: Callable) -> dict:
    return {k: fn(v) for k, v in a.items()}


def select_vector(u: dict, pred: Callable, thunk=None) -> dict:
    return {i: v for i, v in u.items() if pred(v, i, 0, thunk)}


def select_matrix(a: dict, pred: Callable, thunk=None) -> dict:
    return {(i, j): v for (i, j), v in a.items() if pred(v, i, j, thunk)}


def extract_matrix(a: dict, row_ids, col_ids) -> dict:
    col_pos = {j: p for p, j in enumerate(col_ids)}
    out = {}
    for out_i, src_i in enumerate(row_ids):
        for (i, j), v in a.items():
            if i == src_i and j in col_pos:
                out[(out_i, col_pos[j])] = v
    return out


def assign_matrix(c: dict, a: dict, row_ids, col_ids, accum: Optional[Callable] = None) -> dict:
    """Z-phase of ``C(I, J) accum= A``, spelled naively (no mask)."""
    region = {(i, j) for i in row_ids for j in col_ids}
    out = {k: v for k, v in c.items() if k not in region}
    mapped = {(row_ids[i], col_ids[j]): v for (i, j), v in a.items()}
    if accum is None:
        out.update(mapped)
    else:
        for k, v in mapped.items():
            out[k] = accum(c[k], v) if k in c else v
        for k in region:
            if k in c and k not in mapped:
                out[k] = c[k]
    return out


def kron(a: dict, b: dict, op: Callable, b_nrows: int, b_ncols: int) -> dict:
    """Kronecker product on dicts."""
    return {
        (i * b_nrows + k, j * b_ncols + l): op(av, bv)
        for (i, j), av in a.items()
        for (k, l), bv in b.items()
    }


def apply_index_matrix(a: dict, fn: Callable, thunk=None) -> dict:
    """Positional apply on dicts: ``out[i,j] = fn(v, i, j, thunk)``."""
    return {(i, j): fn(v, i, j, thunk) for (i, j), v in a.items()}


def write(
    c: dict,
    t: dict,
    *,
    mask: Optional[set] = None,
    mask_complement: bool = False,
    replace: bool = False,
    accum: Optional[Callable] = None,
) -> dict:
    """The GraphBLAS two-phase masked/accumulated write, spelled naively."""
    if accum is None:
        z = dict(t)
    else:
        z = dict(c)
        for k, v in t.items():
            z[k] = accum(z[k], v) if k in z else v
    if mask is None:
        return z

    def in_mask(k) -> bool:
        present = k in mask
        return (not present) if mask_complement else present

    out = {}
    for k, v in z.items():
        if in_mask(k):
            out[k] = v
    if not replace:
        for k, v in c.items():
            if not in_mask(k) and k not in out:
                out[k] = v
    return out
