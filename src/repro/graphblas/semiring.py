"""Semirings: an "add" monoid paired with a "multiply" binary op.

``C = A ⊕.⊗ B`` uses the multiply op on matched entries and the add monoid to
combine products landing on the same output position.  The registry is
generated as the cross product of the useful monoids and multiply ops, named
``{add}_{mult}`` exactly as in SuiteSparse (``plus_times``, ``min_second``,
``lor_land``, ...).  The case study uses:

* ``plus_times``   -- Q1 likes aggregation, Q2 affected-comment counting
* ``plus_pair``    -- structural counting (one per matched pair)
* ``min_second``   -- FastSV hooking (minimum grandparent of neighbours)
* ``lor_land``     -- boolean reachability / structure products
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops
from repro.graphblas.types import BOOL, DataType, promote

__all__ = ["Semiring", "SEMIRINGS", "get", "swapped"]


@dataclass(frozen=True)
class Semiring:
    """An (add monoid, multiply op) pair."""

    name: str
    add: _monoid.Monoid
    mult: ops.BinaryOp

    def output_dtype(self, a: DataType, b: DataType) -> DataType:
        """Natural output type for operand types ``a`` and ``b``."""
        if self.mult.bool_result or self.add.op.bool_result:
            return BOOL
        if self.mult.name == "pair":
            from repro.graphblas.types import INT64

            return INT64
        if self.mult.name == "first":
            return a
        if self.mult.name == "second":
            return b
        return promote(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


_ADDS = (
    _monoid.plus_monoid,
    _monoid.times_monoid,
    _monoid.min_monoid,
    _monoid.max_monoid,
    _monoid.lor_monoid,
    _monoid.land_monoid,
    _monoid.lxor_monoid,
    _monoid.any_monoid,
)
_MULTS = (
    ops.plus,
    ops.minus,
    ops.times,
    ops.div,
    ops.min,
    ops.max,
    ops.first,
    ops.second,
    ops.pair,
    ops.lor,
    ops.land,
    ops.lxor,
    ops.eq,
    ops.ne,
)

SEMIRINGS: dict[str, Semiring] = {}
for _add in _ADDS:
    for _mult in _MULTS:
        _name = f"{_add.name}_{_mult.name}"
        SEMIRINGS[_name] = Semiring(_name, _add, _mult)


def get(name: str) -> Semiring:
    """Look up a semiring by ``{add}_{mult}`` name."""
    try:
        return SEMIRINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r}; available: {sorted(SEMIRINGS)}"
        ) from None


def swapped(s: Semiring) -> Semiring:
    """Semiring with the multiply operand order flipped.

    ``vxm`` is implemented as ``mxv`` on the transpose, which flips the
    multiply's operand order; for non-commutative multiplies (``first``,
    ``second``, ``minus``, ...) the kernel must therefore run the swapped op.
    """
    m = s.mult
    if m.commutative:
        return s
    if m.name == "first":
        new = ops.second
    elif m.name == "second":
        new = ops.first
    else:
        new = ops.BinaryOp(
            f"{m.name}_swapped",
            lambda x, y, _fn=m.fn: _fn(y, x),
            bool_result=m.bool_result,
        )
    return Semiring(f"{s.name}_swapped", s.add, new)


def __getattr__(name: str) -> Semiring:
    """Allow ``semiring.plus_times`` style attribute access."""
    try:
        return SEMIRINGS[name]
    except KeyError:
        raise AttributeError(name) from None
