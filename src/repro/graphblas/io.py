"""Matrix/Vector serialisation helpers.

Matrix Market exchange format (the lingua franca of sparse-matrix tooling and
what SuiteSparse ships its test collection in) plus dense/SciPy round-trips.
The writer always emits ``coordinate`` format and preserves explicit zeros,
which ``scipy.io.mmwrite`` would silently keep too -- but we implement the
writer ourselves so the GraphBLAS type name travels in a structured comment
and round-trips exactly.
"""

from __future__ import annotations

import io as _stdio
from pathlib import Path

import numpy as np

from repro.graphblas import types as _types
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.util.validation import ReproError

__all__ = ["mmwrite", "mmread", "vector_to_text", "vector_from_text"]

_TYPE_COMMENT = "%%repro-dtype:"


def mmwrite(path, matrix: Matrix) -> None:
    """Write a Matrix in MatrixMarket coordinate format (1-based indices)."""
    field = "integer" if (matrix.dtype.is_integer or matrix.dtype.is_bool) else "real"
    lines = [f"%%MatrixMarket matrix coordinate {field} general"]
    lines.append(f"{_TYPE_COMMENT}{matrix.dtype.name}")
    lines.append(f"{matrix.nrows} {matrix.ncols} {matrix.nvals}")
    rows, cols, vals = matrix.to_coo()
    if matrix.dtype.is_bool:
        vals = vals.astype(np.int64)
    for r, c, v in zip(rows.tolist(), cols.tolist(), vals.tolist()):
        lines.append(f"{r + 1} {c + 1} {v}")
    Path(path).write_text("\n".join(lines) + "\n")


def mmread(path) -> Matrix:
    """Read a Matrix written by :func:`mmwrite` (or any coordinate MM file)."""
    text = Path(path).read_text()
    return _mmparse(text)


def _mmparse(text: str) -> Matrix:
    dtype = None
    header = None
    dims = None
    rows, cols, vals = [], [], []
    for line in _stdio.StringIO(text):
        line = line.strip()
        if not line:
            continue
        if line.startswith(_TYPE_COMMENT):
            dtype = _types.lookup(line[len(_TYPE_COMMENT):].strip())
            continue
        if line.startswith("%"):
            if header is None:
                header = line
            continue
        parts = line.split()
        if dims is None:
            if len(parts) != 3:
                raise ReproError(f"malformed MatrixMarket size line: {line!r}")
            dims = (int(parts[0]), int(parts[1]), int(parts[2]))
            continue
        r, c = int(parts[0]) - 1, int(parts[1]) - 1
        v = float(parts[2]) if "." in parts[2] or "e" in parts[2].lower() else int(parts[2])
        rows.append(r)
        cols.append(c)
        vals.append(v)
    if dims is None:
        raise ReproError("MatrixMarket file has no size line")
    if dtype is None:
        dtype = _types.FP64 if any(isinstance(v, float) for v in vals) else _types.INT64
    values = np.asarray(vals, dtype=dtype.np_dtype) if vals else np.zeros(0, dtype.np_dtype)
    return Matrix.from_coo(
        np.asarray(rows, np.int64),
        np.asarray(cols, np.int64),
        values,
        dims[0],
        dims[1],
        dtype=dtype,
    )


def vector_to_text(vector: Vector) -> str:
    """One-line-per-entry text form: ``index value`` with a size header."""
    lines = [f"{vector.size} {vector.nvals} {vector.dtype.name}"]
    for i, v in vector.items():
        lines.append(f"{i} {v}")
    return "\n".join(lines) + "\n"


def vector_from_text(text: str) -> Vector:
    lines = [ln for ln in text.splitlines() if ln.strip()]
    size_s, _nvals_s, dtype_name = lines[0].split()
    dtype = _types.lookup(dtype_name)
    idx, vals = [], []
    for ln in lines[1:]:
        i_s, v_s = ln.split()
        idx.append(int(i_s))
        vals.append(dtype.np_dtype.type(float(v_s) if dtype.is_float else int(float(v_s))))
    return Vector.from_coo(
        np.asarray(idx, np.int64),
        np.asarray(vals, dtype=dtype.np_dtype) if vals else np.zeros(0, dtype.np_dtype),
        int(size_s),
        dtype=dtype,
    )
