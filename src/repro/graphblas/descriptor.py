"""Descriptors: per-call modifiers mirroring ``GrB_Descriptor``.

A descriptor toggles input transposition (``GrB_INP0``/``GrB_INP1``), output
clearing (``GrB_OUTP = GrB_REPLACE``), and mask interpretation
(``GrB_MASK = GrB_COMP`` and/or ``GrB_STRUCTURE``).  Mask flags given here are
OR-ed with flags set on a :class:`~repro.graphblas.mask.Mask` wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

__all__ = ["Descriptor", "NULL", "T0", "T1", "T0T1", "R", "C", "S", "RC", "RS", "RSC"]


@dataclass(frozen=True)
class Descriptor:
    transpose_a: bool = False
    transpose_b: bool = False
    replace: bool = False
    mask_complement: bool = False
    mask_structure: bool = False

    def with_(self, **kw) -> "Descriptor":
        return _dc_replace(self, **kw)


NULL = Descriptor()
T0 = Descriptor(transpose_a=True)
T1 = Descriptor(transpose_b=True)
T0T1 = Descriptor(transpose_a=True, transpose_b=True)
R = Descriptor(replace=True)
C = Descriptor(mask_complement=True)
S = Descriptor(mask_structure=True)
RC = Descriptor(replace=True, mask_complement=True)
RS = Descriptor(replace=True, mask_structure=True)
RSC = Descriptor(replace=True, mask_structure=True, mask_complement=True)
