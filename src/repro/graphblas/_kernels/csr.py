"""CSR-view helpers over canonical row-major COO.

Canonical COO (rows sorted, cols sorted within rows, unique) *is* CSR minus
the ``indptr`` array, which :func:`indptr_from_rows` rebuilds in O(nnz + n).
Extraction, transposition and resize all live here.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas._kernels.coo import canonicalize_matrix
from repro.util.validation import ReproError

__all__ = [
    "indptr_from_rows",
    "expand_rows",
    "transpose",
    "extract_submatrix",
    "row_ranges",
]


def indptr_from_rows(rows: np.ndarray, nrows: int) -> np.ndarray:
    """CSR indptr for canonical (sorted) row indices."""
    counts = np.bincount(rows, minlength=nrows)
    indptr = np.empty(nrows + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    return indptr


def expand_rows(indptr: np.ndarray) -> np.ndarray:
    """Invert indptr back to per-entry row indices."""
    nrows = indptr.size - 1
    return np.repeat(np.arange(nrows, dtype=np.int64), np.diff(indptr))


def row_ranges(indptr: np.ndarray, row_ids: np.ndarray):
    """Flattened entry indices covering the CSR rows in ``row_ids``.

    Returns ``(entry_idx, group)`` where ``entry_idx`` indexes the CSR
    ``cols``/``values`` arrays and ``group[k]`` tells which position of
    ``row_ids`` entry ``k`` belongs to.  This is the standard vectorised
    "gather variable-length row slices" trick: lengths -> repeat -> prefix
    offsets.
    """
    starts = indptr[row_ids]
    lengths = indptr[row_ids + 1] - starts
    total = int(lengths.sum())
    group = np.repeat(np.arange(row_ids.size, dtype=np.int64), lengths)
    if total == 0:
        return np.zeros(0, dtype=np.int64), group
    # offset within each group: arange(total) - start_of_group_in_output
    out_starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(out_starts, lengths)
    entry_idx = np.repeat(starts, lengths) + within
    return entry_idx, group


def transpose(rows, cols, values, nrows: int, ncols: int):
    """Transpose canonical COO: swap and re-canonicalise."""
    r, c, v = canonicalize_matrix(cols, rows, values, ncols, nrows, dup_op=None)
    return r, c, v


def extract_submatrix(rows, cols, values, nrows, ncols, row_ids, col_ids):
    """``C = A(I, J)`` -- GrB_extract.

    ``row_ids`` may contain duplicates (the spec allows it; the output then
    repeats those rows).  ``col_ids`` must be duplicate-free because a
    duplicated output column would need duplicated entries per source entry;
    the case study never requires it and we raise a clear error instead.
    """
    row_ids = np.ascontiguousarray(row_ids, dtype=np.int64)
    col_ids = np.ascontiguousarray(col_ids, dtype=np.int64)
    indptr = indptr_from_rows(rows, nrows)
    entry_idx, out_rows = row_ranges(indptr, row_ids)
    sub_cols = cols[entry_idx]
    sub_vals = values[entry_idx]

    if col_ids.size != np.unique(col_ids).size:
        raise ReproError("extract: duplicate column indices are not supported")
    lookup = np.full(ncols, -1, dtype=np.int64)
    lookup[col_ids] = np.arange(col_ids.size, dtype=np.int64)
    mapped = lookup[sub_cols]
    keep = mapped >= 0
    return canonicalize_matrix(
        out_rows[keep], mapped[keep], sub_vals[keep], row_ids.size, col_ids.size
    )
