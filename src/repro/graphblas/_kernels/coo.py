"""Canonical sorted-COO primitives: key encoding, sorting, deduplication.

The kernels encode a matrix position ``(i, j)`` as the int64 key
``i * ncols + j``.  This turns 2-D structural set algebra (mask application,
eWise merges, accumulation) into 1-D sorted-array operations, which NumPy
executes at memcpy-like speed.  The encoding requires
``nrows * ncols < 2**63``; :func:`check_key_space` guards this (a graph with
3 billion nodes squared would overflow -- far beyond this library's scope).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ReproError

__all__ = [
    "check_key_space",
    "encode",
    "decode",
    "canonicalize_matrix",
    "canonicalize_vector",
    "segment_reduce",
    "in1d_sorted",
]

_MAX_KEY = np.iinfo(np.int64).max


def check_key_space(nrows: int, ncols: int) -> None:
    """Raise if (nrows, ncols) positions cannot be encoded in int64 keys."""
    if ncols != 0 and nrows > _MAX_KEY // max(ncols, 1):
        raise ReproError(
            f"matrix shape ({nrows}, {ncols}) exceeds the int64 key space; "
            "this backend supports nrows*ncols < 2**63"
        )


def encode(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Encode (row, col) pairs into sortable int64 keys."""
    return rows * np.int64(ncols) + cols


def decode(keys: np.ndarray, ncols: int) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`encode`."""
    if ncols == 0:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    return keys // ncols, keys % ncols


def segment_reduce(values: np.ndarray, starts: np.ndarray, op) -> np.ndarray:
    """Reduce contiguous segments of ``values``.

    ``starts`` holds the first index of each (non-empty) segment; the final
    segment ends at ``len(values)``.  Uses ``ufunc.reduceat`` when the binary
    op has a ufunc; otherwise falls back to a Python loop (only exercised by
    exotic user-defined monoids).
    """
    if starts.size == 0:
        return values[:0]
    uf = getattr(op, "ufunc", None)
    if uf is not None:
        return uf.reduceat(values, starts)
    # Fallback: slow but general.
    ends = np.append(starts[1:], len(values))
    out = np.empty(starts.size, dtype=values.dtype)
    for s in range(starts.size):
        seg = values[starts[s] : ends[s]]
        acc = seg[0]
        for v in seg[1:]:
            acc = op(acc, v)
        out[s] = acc
    return out


def _dedup(keys_sorted: np.ndarray, vals_sorted: np.ndarray, dup_op):
    """Collapse runs of equal keys in an already-sorted key array."""
    if keys_sorted.size == 0:
        return keys_sorted, vals_sorted
    boundary = np.empty(keys_sorted.size, dtype=np.bool_)
    boundary[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=boundary[1:])
    if boundary.all():
        return keys_sorted, vals_sorted
    starts = np.flatnonzero(boundary)
    if dup_op is None:
        raise ReproError("duplicate positions present but no dup_op given")
    if dup_op.name == "second":  # "last wins" fast path (GrB default for assign)
        last = np.append(starts[1:], keys_sorted.size) - 1
        return keys_sorted[starts], vals_sorted[last]
    if dup_op.name == "first":
        return keys_sorted[starts], vals_sorted[starts]
    return keys_sorted[starts], segment_reduce(vals_sorted, starts, dup_op)


def canonicalize_matrix(rows, cols, values, nrows: int, ncols: int, dup_op=None):
    """Sort (row-major) and deduplicate COO triples.

    Returns contiguous int64 ``rows``/``cols`` and a value array.  ``dup_op``
    combines duplicates (GraphBLAS ``GrB_Matrix_build`` semantics); with no
    duplicates present it is never consulted.
    """
    check_key_space(nrows, ncols)
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    cols = np.ascontiguousarray(cols, dtype=np.int64)
    values = np.asarray(values)
    if not (rows.shape == cols.shape == values.shape):
        raise ReproError(
            f"COO arrays must have equal length, got {rows.shape}, {cols.shape}, {values.shape}"
        )
    keys = encode(rows, cols, ncols)
    order = np.argsort(keys, kind="stable")
    keys, values = keys[order], values[order]
    keys, values = _dedup(keys, values, dup_op)
    r, c = decode(keys, ncols) if ncols else (keys * 0, keys * 0)
    return r, c, values


def canonicalize_vector(indices, values, size: int, dup_op=None):
    """Sort and deduplicate (index, value) pairs for a vector."""
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    values = np.asarray(values)
    if indices.shape != values.shape:
        raise ReproError(
            f"vector build arrays must have equal length, got {indices.shape}, {values.shape}"
        )
    order = np.argsort(indices, kind="stable")
    idx, vals = indices[order], values[order]
    return _dedup(idx, vals, dup_op)


def in1d_sorted(needles: np.ndarray, haystack_sorted: np.ndarray) -> np.ndarray:
    """Membership test against a sorted unique array, O(n log m).

    Faster and allocation-lighter than ``np.isin`` because the haystack is
    already sorted unique (a canonical key array).
    """
    if haystack_sorted.size == 0:
        return np.zeros(needles.shape, dtype=np.bool_)
    pos = np.searchsorted(haystack_sorted, needles)
    pos[pos == haystack_sorted.size] = haystack_sorted.size - 1
    return haystack_sorted[pos] == needles
