"""Sparse matrix-matrix multiply over arbitrary semirings.

Two code paths:

* :func:`generic_mxm` -- expansion SpGEMM.  Every (i,k)x(k,j) product is
  materialised (``np.repeat`` over B's row lengths), then products landing on
  the same (i,j) are combined with the add monoid via a sorted segment
  reduction.  Memory is O(flops); correct for *any* semiring including
  annihilating sums, because reduction happens on the full product list.

* :func:`scipy_plus_times_mxm` -- delegates to SciPy's compiled SpGEMM for the
  common ``plus_times`` case.  SciPy computes over the ring of reals and may
  drop entries whose sum happens to be exactly zero, which GraphBLAS must
  keep; the structural product of the patterns is used to re-insert them.

The dispatcher :func:`mxm` picks the fast path when the semiring and dtypes
allow, mirroring how SuiteSparse selects built-in kernels.  The ablation
benchmark ``benchmarks/bench_ablation_spgemm.py`` measures the difference.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphblas._kernels import parallel as _parallel
from repro.graphblas._kernels.coo import (
    canonicalize_matrix,
    decode,
    encode,
    in1d_sorted,
)
from repro.graphblas._kernels.csr import indptr_from_rows, row_ranges
from repro.util.validation import ReproError

__all__ = ["mxm", "generic_mxm", "scipy_plus_times_mxm", "FLOP_LIMIT"]

#: Expansion kernels refuse to materialise more than this many products
#: *at once*.  Batches whose total exceeds it are row-tiled (each tile's
#: product count stays under the limit); only a single row that on its own
#: overflows the limit still fails.
FLOP_LIMIT = 300_000_000


def _expand_block(a_rows, a_cols, a_vals, b_indptr, b_cols, b_vals, semiring, nrows, ncols):
    """Expansion SpGEMM of one row block of A against all of B (canonical).

    ``a_*`` may be any contiguous row span of canonical A; the output keys
    use the full (nrows, ncols) space so disjoint ascending blocks
    concatenate into a canonical whole without a global re-sort.
    """
    b_entry, a_entry = row_ranges(b_indptr, a_cols)
    out_rows = a_rows[a_entry]
    out_cols = b_cols[b_entry]

    mult = semiring.mult
    if mult.name == "first":
        prod = a_vals[a_entry]
    elif mult.name == "second":
        prod = b_vals[b_entry]
    elif mult.name == "pair":
        prod = np.ones(out_rows.size, dtype=np.int64)
    else:
        prod = np.asarray(mult(a_vals[a_entry], b_vals[b_entry]))

    return canonicalize_matrix(
        out_rows, out_cols, prod, nrows, ncols, dup_op=semiring.add.op
    )


def _tiled_mxm(a, b_indptr, b_cols, b_vals, b_ncols, semiring, lengths, flops):
    """Serial row-tiled expansion for batches over :data:`FLOP_LIMIT`.

    Greedy tiling over the per-row flop prefix: each tile materialises at
    most ``FLOP_LIMIT`` products, tiles splice by concatenation (disjoint
    ascending row spans).  Degrades the former hard failure into O(flops)
    work at O(FLOP_LIMIT) peak memory.
    """
    a_rows, a_cols, a_vals, a_nrows, _ = a
    prefix = _parallel._row_work_prefix(a_rows, lengths, a_nrows)
    worst = int(np.diff(prefix).max()) if a_nrows else 0
    if worst > FLOP_LIMIT:
        raise ReproError(
            f"mxm: a single output row would materialise {worst} products "
            f"(> {FLOP_LIMIT}); matrix too dense even for row-tiled expansion"
        )
    a_indptr = indptr_from_rows(a_rows, a_nrows)
    parts = []
    lo = 0
    while lo < a_nrows:
        hi = int(np.searchsorted(prefix, prefix[lo] + FLOP_LIMIT, side="right")) - 1
        hi = max(hi, lo + 1)
        s, e = int(a_indptr[lo]), int(a_indptr[hi])
        parts.append(
            _expand_block(
                a_rows[s:e], a_cols[s:e], a_vals[s:e],
                b_indptr, b_cols, b_vals, semiring, a_nrows, b_ncols,
            )
        )
        lo = hi
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


def generic_mxm(a, b, semiring):
    """``C = A ⊕.⊗ B`` over any semiring.

    ``a`` and ``b`` are ``(rows, cols, values, nrows, ncols)`` tuples in
    canonical COO form.  Returns canonical COO for C.

    Dispatch: above the kernel-layer cutoff the expansion runs row-parallel
    (:func:`repro.graphblas._kernels.parallel.parallel_mxm`); above
    :data:`FLOP_LIMIT` it runs serially in row tiles instead of failing.
    """
    a_rows, a_cols, a_vals, a_nrows, a_ncols = a
    b_rows, b_cols, b_vals, b_nrows, b_ncols = b
    if a_ncols != b_nrows:
        raise ReproError(f"mxm: inner dimensions differ ({a_ncols} vs {b_nrows})")

    b_indptr = indptr_from_rows(b_rows, b_nrows)
    lengths = b_indptr[a_cols + 1] - b_indptr[a_cols]
    flops = int(lengths.sum())
    res = _parallel.parallel_mxm(
        a, b_indptr, b_cols, b_vals, b_ncols, semiring, lengths, flops
    )
    if res is not None:
        return res
    if flops > FLOP_LIMIT:
        return _tiled_mxm(a, b_indptr, b_cols, b_vals, b_ncols, semiring, lengths, flops)
    return _expand_block(
        a_rows, a_cols, a_vals, b_indptr, b_cols, b_vals, semiring, a_nrows, b_ncols
    )


def scipy_plus_times_mxm(a, b):
    """plus_times SpGEMM via SciPy with annihilation repair."""
    a_rows, a_cols, a_vals, a_nrows, a_ncols = a
    b_rows, b_cols, b_vals, b_nrows, b_ncols = b
    if a_ncols != b_nrows:
        raise ReproError(f"mxm: inner dimensions differ ({a_ncols} vs {b_nrows})")
    # SciPy cannot hold bool through matmul reliably; compute in int64/float64.
    compute_dtype = np.float64 if (
        np.issubdtype(a_vals.dtype, np.floating) or np.issubdtype(b_vals.dtype, np.floating)
    ) else np.int64
    A = sp.csr_matrix(
        (a_vals.astype(compute_dtype), (a_rows, a_cols)), shape=(a_nrows, a_ncols)
    )
    B = sp.csr_matrix(
        (b_vals.astype(compute_dtype), (b_rows, b_cols)), shape=(b_nrows, b_ncols)
    )
    C = (A @ B).tocoo()
    c_rows, c_cols, c_vals = (
        C.row.astype(np.int64),
        C.col.astype(np.int64),
        C.data,
    )
    # Structural product: which (i,j) must be present per GraphBLAS semantics.
    # The repair pass is the Python-side cost of the SciPy fast path, so it is
    # the part routed through the parallel kernel layer when large enough.
    c_keys = encode(c_rows, c_cols, b_ncols)
    order = np.argsort(c_keys, kind="stable")
    c_keys, c_vals = c_keys[order], c_vals[order]
    p_keys = _parallel.parallel_structural_product(
        a_rows, a_cols, b_rows, b_cols, a_nrows, b_nrows, b_ncols
    )
    if p_keys is None:
        Ap = sp.csr_matrix(
            (np.ones(a_rows.size, np.int64), (a_rows, a_cols)), shape=A.shape
        )
        Bp = sp.csr_matrix(
            (np.ones(b_rows.size, np.int64), (b_rows, b_cols)), shape=B.shape
        )
        P = (Ap @ Bp).tocoo()
        p_keys = encode(P.row.astype(np.int64), P.col.astype(np.int64), b_ncols)
        p_keys.sort()
    missing = p_keys[~in1d_sorted(p_keys, c_keys)]
    if missing.size:
        keys = np.concatenate([c_keys, missing])
        vals = np.concatenate([c_vals, np.zeros(missing.size, dtype=c_vals.dtype)])
        order = np.argsort(keys, kind="stable")
        c_keys, c_vals = keys[order], vals[order]
    rows, cols = decode(c_keys, b_ncols)
    return rows, cols, c_vals


def mxm(a, b, semiring, prefer_scipy: bool = True):
    """Dispatch to the SciPy fast path when applicable, else generic."""
    if (
        prefer_scipy
        and semiring.name == "plus_times"
        and a[2].dtype != np.bool_
        and b[2].dtype != np.bool_
    ):
        return scipy_plus_times_mxm(a, b)
    return generic_mxm(a, b, semiring)
