"""Sparse matrix-matrix multiply over arbitrary semirings.

Two code paths:

* :func:`generic_mxm` -- expansion SpGEMM.  Every (i,k)x(k,j) product is
  materialised (``np.repeat`` over B's row lengths), then products landing on
  the same (i,j) are combined with the add monoid via a sorted segment
  reduction.  Memory is O(flops); correct for *any* semiring including
  annihilating sums, because reduction happens on the full product list.

* :func:`scipy_plus_times_mxm` -- delegates to SciPy's compiled SpGEMM for the
  common ``plus_times`` case.  SciPy computes over the ring of reals and may
  drop entries whose sum happens to be exactly zero, which GraphBLAS must
  keep; the structural product of the patterns is used to re-insert them.

The dispatcher :func:`mxm` picks the fast path when the semiring and dtypes
allow, mirroring how SuiteSparse selects built-in kernels.  The ablation
benchmark ``benchmarks/bench_ablation_spgemm.py`` measures the difference.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graphblas._kernels.coo import (
    canonicalize_matrix,
    decode,
    encode,
    in1d_sorted,
)
from repro.graphblas._kernels.csr import indptr_from_rows, row_ranges
from repro.util.validation import ReproError

__all__ = ["mxm", "generic_mxm", "scipy_plus_times_mxm", "FLOP_LIMIT"]

#: Expansion kernels refuse to materialise more than this many products.
FLOP_LIMIT = 300_000_000


def generic_mxm(a, b, semiring):
    """``C = A ⊕.⊗ B`` over any semiring.

    ``a`` and ``b`` are ``(rows, cols, values, nrows, ncols)`` tuples in
    canonical COO form.  Returns canonical COO for C.
    """
    a_rows, a_cols, a_vals, a_nrows, a_ncols = a
    b_rows, b_cols, b_vals, b_nrows, b_ncols = b
    if a_ncols != b_nrows:
        raise ReproError(f"mxm: inner dimensions differ ({a_ncols} vs {b_nrows})")

    b_indptr = indptr_from_rows(b_rows, b_nrows)
    lengths = b_indptr[a_cols + 1] - b_indptr[a_cols]
    flops = int(lengths.sum())
    if flops > FLOP_LIMIT:
        raise ReproError(
            f"mxm would materialise {flops} products (> {FLOP_LIMIT}); "
            "matrix too dense for the expansion kernel"
        )
    b_entry, a_entry = row_ranges(b_indptr, a_cols)
    out_rows = a_rows[a_entry]
    out_cols = b_cols[b_entry]

    mult = semiring.mult
    if mult.name == "first":
        prod = a_vals[a_entry]
    elif mult.name == "second":
        prod = b_vals[b_entry]
    elif mult.name == "pair":
        prod = np.ones(out_rows.size, dtype=np.int64)
    else:
        prod = np.asarray(mult(a_vals[a_entry], b_vals[b_entry]))

    return canonicalize_matrix(
        out_rows, out_cols, prod, a_nrows, b_ncols, dup_op=semiring.add.op
    )


def scipy_plus_times_mxm(a, b):
    """plus_times SpGEMM via SciPy with annihilation repair."""
    a_rows, a_cols, a_vals, a_nrows, a_ncols = a
    b_rows, b_cols, b_vals, b_nrows, b_ncols = b
    if a_ncols != b_nrows:
        raise ReproError(f"mxm: inner dimensions differ ({a_ncols} vs {b_nrows})")
    # SciPy cannot hold bool through matmul reliably; compute in int64/float64.
    compute_dtype = np.float64 if (
        np.issubdtype(a_vals.dtype, np.floating) or np.issubdtype(b_vals.dtype, np.floating)
    ) else np.int64
    A = sp.csr_matrix(
        (a_vals.astype(compute_dtype), (a_rows, a_cols)), shape=(a_nrows, a_ncols)
    )
    B = sp.csr_matrix(
        (b_vals.astype(compute_dtype), (b_rows, b_cols)), shape=(b_nrows, b_ncols)
    )
    C = (A @ B).tocoo()
    c_rows, c_cols, c_vals = (
        C.row.astype(np.int64),
        C.col.astype(np.int64),
        C.data,
    )
    # Structural product: which (i,j) must be present per GraphBLAS semantics.
    Ap = sp.csr_matrix((np.ones(a_rows.size, np.int64), (a_rows, a_cols)), shape=A.shape)
    Bp = sp.csr_matrix((np.ones(b_rows.size, np.int64), (b_rows, b_cols)), shape=B.shape)
    P = (Ap @ Bp).tocoo()
    c_keys = encode(c_rows, c_cols, b_ncols)
    order = np.argsort(c_keys, kind="stable")
    c_keys, c_vals = c_keys[order], c_vals[order]
    p_keys = encode(P.row.astype(np.int64), P.col.astype(np.int64), b_ncols)
    p_keys.sort()
    missing = p_keys[~in1d_sorted(p_keys, c_keys)]
    if missing.size:
        keys = np.concatenate([c_keys, missing])
        vals = np.concatenate([c_vals, np.zeros(missing.size, dtype=c_vals.dtype)])
        order = np.argsort(keys, kind="stable")
        c_keys, c_vals = keys[order], vals[order]
    rows, cols = decode(c_keys, b_ncols)
    return rows, cols, c_vals


def mxm(a, b, semiring, prefer_scipy: bool = True):
    """Dispatch to the SciPy fast path when applicable, else generic."""
    if (
        prefer_scipy
        and semiring.name == "plus_times"
        and a[2].dtype != np.bool_
        and b[2].dtype != np.bool_
    ):
        return scipy_plus_times_mxm(a, b)
    return generic_mxm(a, b, semiring)
