"""Sparse matrix-vector products over arbitrary semirings.

``mxv`` computes ``w = A ⊕.⊗ u``: for each matrix entry (i, j) with u[j]
present, form ``⊗(A[i,j], u[j])`` and reduce per row with the add monoid.
The kernel filters A's entries by u's structure with one boolean gather, so
cost is O(nnz(A) + output) regardless of u's density.  ``vxm`` is ``mxv`` on
the transpose, which callers obtain via the Matrix-level transpose cache.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas._kernels import parallel as _parallel
from repro.graphblas._kernels.coo import segment_reduce
from repro.util.validation import ReproError

__all__ = ["mxv"]


def mxv(a, u, semiring, indptr=None):
    """``w = A ⊕.⊗ u``.

    Parameters
    ----------
    a : (rows, cols, values, nrows, ncols) canonical COO
    u : (indices, values, size) canonical sparse vector
    indptr : optional cached CSR row pointer of A, used by the parallel
        path to partition row blocks by nnz without recomputing it

    Returns ``(indices, values)`` of the canonical result vector.
    """
    a_rows, a_cols, a_vals, a_nrows, a_ncols = a
    u_idx, u_vals, u_size = u
    if a_ncols != u_size:
        raise ReproError(f"mxv: A has {a_ncols} columns but u has size {u_size}")

    if u_idx.size == 0 or a_rows.size == 0:
        return np.zeros(0, np.int64), np.zeros(0, dtype=a_vals.dtype)

    res = _parallel.parallel_mxv(a, u, semiring, indptr)
    if res is not None:
        return res
    return _mxv_serial(a, u, semiring)


def _mxv_serial(a, u, semiring):
    """The single-block kernel; also runs per row block in parallel workers
    (block outputs concatenate because rows never span blocks)."""
    a_rows, a_cols, a_vals, _a_nrows, a_ncols = a
    u_idx, u_vals, _u_size = u
    if u_idx.size == 0 or a_rows.size == 0:
        return np.zeros(0, np.int64), np.zeros(0, dtype=a_vals.dtype)

    # Dense presence lookup over the column space: one allocation, O(1) gather.
    present = np.zeros(a_ncols, dtype=np.bool_)
    present[u_idx] = True
    sel = present[a_cols]
    if not sel.any():
        return np.zeros(0, np.int64), np.zeros(0, dtype=a_vals.dtype)

    rows_s = a_rows[sel]
    cols_s = a_cols[sel]
    avals_s = a_vals[sel]

    u_dense = np.zeros(a_ncols, dtype=u_vals.dtype)
    u_dense[u_idx] = u_vals
    uvals_s = u_dense[cols_s]

    mult = semiring.mult
    if mult.name == "first":
        prod = avals_s
    elif mult.name == "second":
        prod = uvals_s
    elif mult.name == "pair":
        prod = np.ones(rows_s.size, dtype=np.int64)
    else:
        prod = np.asarray(mult(avals_s, uvals_s))

    # rows_s is already sorted (canonical COO is row-major); reduce segments.
    boundary = np.empty(rows_s.size, dtype=np.bool_)
    boundary[0] = True
    np.not_equal(rows_s[1:], rows_s[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    out_idx = rows_s[starts]
    out_vals = segment_reduce(prod, starts, semiring.add.op)
    return out_idx, out_vals
