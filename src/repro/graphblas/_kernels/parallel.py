"""Row-parallel kernel execution: the OpenMP substitution at kernel level.

The paper replaces SuiteSparse's internal parallelism with OpenMP at the
work-item level; this module mirrors that for the NumPy kernels.  A CSR
workload (canonical row-major COO) is split into **row blocks balanced by
nnz** -- the same even-bounds logic :func:`repro.parallel.executor.
chunk_evenly` applies to item counts, applied to the ``indptr`` prefix
instead -- and the blocks are mapped onto a process-wide kernel executor
(by default a fork-once :class:`~repro.parallel.pool.PersistentWorkerPool`
sized by the ``REPRO_WORKERS`` environment knob).  Large read-only operands
are primed once per region through the pool's shared-memory initializer
idiom; each worker returns a canonical COO (or vector) segment for its row
span, and because blocks cover disjoint, increasing row ranges the parent
re-assembles the result with one ``np.concatenate`` per array -- no global
re-sort, the same span-splice argument as ``_kernels/freeze.py``.

Routing policy (every entry point below):

* the estimated work must clear a tunable cutoff
  (``REPRO_PARALLEL_CUTOFF``, default :data:`DEFAULT_PARALLEL_CUTOFF`) --
  below it a parallel region cannot amortise priming + result pickling and
  the kernel runs serially, exactly the paper's observation that small
  incremental updates gain nothing from 8 threads;
* a kernel executor must be installed (:func:`set_kernel_executor`, or
  lazily from ``REPRO_WORKERS``) with ``workers >= 2``;
* the algebra must be registry-named (semiring in ``SEMIRINGS``, monoid in
  ``MONOIDS``): workers re-resolve operators by name because operator
  objects close over lambdas and do not pickle;
* the caller must be the process that installed the executor -- a forked
  worker that re-enters a kernel (e.g. FastSV inside a Q2 scoring child)
  sees a foreign pid and silently runs the serial path instead of writing
  garbage into its parent's pipes.

Regions are serialised by a module lock: like OpenMP, one parallel region
runs at a time and uses every worker; concurrent engine refreshes queue at
the region boundary rather than oversubscribing the pool.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

import numpy as np

from repro.graphblas._kernels.csr import indptr_from_rows
from repro.parallel.executor import Executor, even_bounds, make_executor

__all__ = [
    "DEFAULT_PARALLEL_CUTOFF",
    "get_parallel_cutoff",
    "set_parallel_cutoff",
    "kernel_workers_from_env",
    "set_kernel_executor",
    "get_kernel_executor",
    "retain_kernel_executor",
    "release_kernel_executor",
    "close_kernel_executor",
    "locked_map",
    "balanced_bounds",
    "parallel_mxm",
    "parallel_structural_product",
    "parallel_mxv",
    "parallel_reduce_rows",
    "parallel_merge_dirty_rows",
]

#: Minimum estimated work items (flops for SpGEMM, nnz for SpMV/reduce,
#: entries moved for the dirty-row merge) before a parallel region pays.
DEFAULT_PARALLEL_CUTOFF = 2_000_000

_lock = threading.Lock()  # guards the executor slot
# One parallel region at a time (OpenMP-like).  Reentrant as a safety net:
# an executor whose serial fallback runs chunks inline must not self-
# deadlock if a chunk re-enters a kernel on the dispatching thread.
_region_lock = threading.RLock()

#: pid that imported this module: forked children inherit the state dict,
#: and neither the lazy env init nor a close may run on their side of the
#: fork (a child building its own nested pool per chunk would fork
#: grandchildren; a child closing would strand the parent's workers)
_IMPORT_PID = os.getpid()

_state: dict = {
    "executor": None,
    "owner_pid": -1,
    "env_checked": False,
    "cutoff": None,
    #: services currently holding the env-created executor (refcount);
    #: explicitly installed executors are caller-owned and never counted
    "refs": 0,
    "explicit": False,
}


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


def get_parallel_cutoff() -> int:
    """The serial-fallback work cutoff (``REPRO_PARALLEL_CUTOFF`` env)."""
    c = _state["cutoff"]
    if c is None:
        try:
            c = int(os.environ.get("REPRO_PARALLEL_CUTOFF", DEFAULT_PARALLEL_CUTOFF))
        except ValueError:
            c = DEFAULT_PARALLEL_CUTOFF
        _state["cutoff"] = c
    return c


def set_parallel_cutoff(n: Optional[int]) -> None:
    """Override the cutoff; ``None`` re-reads the environment."""
    _state["cutoff"] = None if n is None else int(n)


def kernel_workers_from_env() -> int:
    """``REPRO_WORKERS`` as an int; 0 when unset or malformed."""
    raw = os.environ.get("REPRO_WORKERS", "")
    try:
        return int(raw) if raw else 0
    except ValueError:
        return 0


def set_kernel_executor(executor: Optional[Executor]) -> None:
    """Install (or with ``None``, disable) the process-wide kernel executor.

    The caller keeps ownership of a previously installed executor; this
    never closes one.  Pass anything from
    :func:`repro.parallel.make_executor` -- the fork-once ``"persistent"``
    pool is the intended vehicle.  Equivalent to launching the process
    with ``REPRO_WORKERS=n``, but under the caller's lifecycle control:

    >>> from repro.parallel import make_executor
    >>> close_kernel_executor()           # release any env-built pool first:
    ...                                   # installing never closes the old one
    >>> ex = make_executor("serial")      # or ("persistent", 8) on real HW
    >>> set_kernel_executor(ex)           # kernels over the cutoff now fan out
    >>> get_kernel_executor() is ex
    True
    >>> close_kernel_executor()           # restart: next get_kernel_executor()
    ...                                   # re-reads REPRO_WORKERS lazily
    """
    with _lock:
        _state["executor"] = executor
        _state["owner_pid"] = os.getpid()
        _state["env_checked"] = True
        _state["explicit"] = executor is not None
        _state["refs"] = 0


def _env_init_locked() -> None:
    """Lazy ``REPRO_WORKERS`` initialisation (caller holds ``_lock``).

    Refused in any process other than the one that imported this module:
    a forked chunk worker inherits ``env_checked=False`` and must not
    build a nested pool of its own.
    """
    if _state["env_checked"] or os.getpid() != _IMPORT_PID:
        return
    _state["env_checked"] = True
    w = kernel_workers_from_env()
    if w > 1:
        _state["executor"] = make_executor("persistent", w)
        _state["owner_pid"] = os.getpid()
        _state["explicit"] = False
        _state["refs"] = 0


def get_kernel_executor() -> Optional[Executor]:
    """The installed kernel executor, lazily built from ``REPRO_WORKERS``.

    Returns ``None`` when parallel kernels are disabled -- including inside
    forked worker processes, which inherit the parent's slot but must never
    drive (or rebuild) the parent's pool.
    """
    with _lock:
        _env_init_locked()
        ex = _state["executor"]
        if ex is not None and _state["owner_pid"] != os.getpid():
            return None
        return ex


def retain_kernel_executor() -> Optional[Executor]:
    """Acquire a shared reference to the env-created executor.

    Used by :class:`~repro.serving.service.GraphService`: each open service
    holds one reference, and :func:`release_kernel_executor` closes the
    workers when the last holder lets go.  Explicitly installed executors
    (:func:`set_kernel_executor`) are caller-owned: they are returned but
    never refcounted, and a release never closes them.
    """
    with _lock:
        _env_init_locked()
        ex = _state["executor"]
        if ex is None or _state["owner_pid"] != os.getpid():
            return None
        if not _state["explicit"]:
            _state["refs"] += 1
        return ex


def release_kernel_executor() -> None:
    """Drop one :func:`retain_kernel_executor` reference; close on zero.

    Idempotent past zero.  Explicit executors are untouched -- their
    installer owns their lifecycle.
    """
    close_this = None
    with _lock:
        if (
            _state["explicit"]
            or _state["executor"] is None
            or _state["owner_pid"] != os.getpid()
        ):
            return
        _state["refs"] = max(0, _state["refs"] - 1)
        if _state["refs"] == 0:
            close_this = _state["executor"]
            _state["executor"] = None
            _state["env_checked"] = False
    if close_this is not None:
        close_this.close()


def close_kernel_executor() -> None:
    """Force-tear-down the kernel executor (idempotent; no orphaned workers).

    The hard hammer: closes even an explicitly installed executor and
    clears all references.  The next :func:`get_kernel_executor`
    re-initialises from the environment, so a closed executor is a
    restart, not a permanent disable.
    """
    with _lock:
        ex = _state["executor"]
        owner = _state["owner_pid"]
        _state["executor"] = None
        _state["env_checked"] = False
        _state["explicit"] = False
        _state["refs"] = 0
    if ex is not None and owner == os.getpid():
        ex.close()


def locked_map(executor: Executor, fn, chunks, *, initializer=None, initargs=(),
               kernel: Optional[str] = None, work: int = 0):
    """Run one fork-join region under the module region lock.

    Concurrent engine refreshes (the serving fan-out) may reach kernels at
    the same time; serialising regions keeps each one owning the full pool,
    which is both the OpenMP cost model and a hard requirement of the
    pipe-per-worker pool protocol.

    When a :class:`~repro.obs.kernels.KernelProfiler` is installed
    (``REPRO_PROFILE_KERNELS``) and the caller names its ``kernel`` (with
    ``work`` = its estimated flops/nnz), the block function is wrapped in a
    picklable :class:`~repro.obs.kernels.TimedBlock`: each worker times its
    blocks locally and the timings ride back with the results, so the
    region join can record per-block imbalance without extra IPC.  With no
    profiler installed the hook costs one ``None`` check per *region*.

    Caution for callers whose ``fn`` may itself re-enter routed kernels
    (the kernel layer's own block workers never do -- they call the serial
    cores): dispatch such functions only through a fork-isolated executor
    (:func:`executor_isolates_workers`), because a worker running in-process
    on *another thread* would block on this lock while the dispatcher holds
    it.
    """
    from repro.obs.kernels import TimedBlock, get_kernel_profiler

    prof = get_kernel_profiler() if kernel is not None else None
    with _region_lock:
        if prof is None:
            return executor.map_chunks(
                fn, chunks, initializer=initializer, initargs=initargs
            )
        import time as _time

        t0 = _time.perf_counter()
        timed = executor.map_chunks(
            TimedBlock(fn), chunks, initializer=initializer, initargs=initargs
        )
        wall = _time.perf_counter() - t0
    prof.record_region(
        kernel, work, len(timed), wall, [dt for dt, _ in timed]
    )
    return [out for _, out in timed]


def executor_isolates_workers(executor: Executor) -> bool:
    """True when the executor runs chunk functions in forked child
    processes (where the pid guard stops kernel re-entry).  Chunk functions
    that re-enter routed kernels -- e.g. Q2's per-comment scorer, whose
    FastSV calls ``mxm``/``mxv`` -- must only ride executors for which this
    holds."""
    from repro.parallel.pool import PersistentWorkerPool

    return isinstance(executor, PersistentWorkerPool)


# ---------------------------------------------------------------------------
# partitioning
# ---------------------------------------------------------------------------


def balanced_bounds(prefix: np.ndarray, n_blocks: int) -> np.ndarray:
    """Row bounds splitting a CSR into at most ``n_blocks`` spans balanced
    by the monotone work prefix (an ``indptr`` for nnz balance, a flop
    prefix for SpGEMM).  Returns ``[r_0 .. r_m]`` with ``r_0 = 0`` and
    ``r_m = len(prefix) - 1``; bounds may repeat where a single heavy row
    absorbs several even targets (callers drop empty spans)."""
    n = int(prefix.size - 1)
    total = int(prefix[-1])
    if n_blocks <= 1 or n <= 1 or total == 0:
        return np.array([0, n], dtype=np.int64)
    targets = even_bounds(total, min(n_blocks, n))
    bounds = np.searchsorted(prefix, targets, side="left").astype(np.int64)
    bounds[0] = 0
    bounds[-1] = n
    np.maximum.accumulate(bounds, out=bounds)
    return bounds


def _spans(bounds: np.ndarray) -> list[tuple[int, int]]:
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(bounds.size - 1)
        if bounds[i + 1] > bounds[i]
    ]


def _usable(work: int) -> Optional[Executor]:
    """The executor to use for ``work`` estimated items, or None (serial)."""
    if work < get_parallel_cutoff():
        return None
    return _executor_ready()


def _executor_ready() -> Optional[Executor]:
    """The executor if one is installed and multi-worker, else None.

    The cheap pre-check for entry points whose work estimate itself costs
    O(nnz) to compute: in the default serial configuration they must bail
    before touching any array.
    """
    ex = get_kernel_executor()
    if ex is None or getattr(ex, "workers", 1) < 2:
        return None
    return ex


def _capped_bounds(prefix: np.ndarray, n_blocks: int, limit: int) -> np.ndarray:
    """:func:`balanced_bounds`, then greedily split any block whose work
    exceeds ``limit`` (callers guarantee no single row does): the parallel
    SpGEMM must honour the same peak-memory cap per worker as the serial
    row-tiled path."""
    bounds = balanced_bounds(prefix, n_blocks)
    out = [0]
    for b in bounds[1:].tolist():
        while prefix[b] - prefix[out[-1]] > limit:
            nxt = int(np.searchsorted(prefix, prefix[out[-1]] + limit, side="right")) - 1
            nxt = max(nxt, out[-1] + 1)
            if nxt >= b:
                break
            out.append(nxt)
        if b > out[-1]:
            out.append(int(b))
    return np.asarray(out, dtype=np.int64)


def _row_work_prefix(rows: np.ndarray, weights: np.ndarray, nrows: int) -> np.ndarray:
    """Per-row work prefix (length ``nrows + 1``) from per-entry weights.

    float64 accumulation is exact here: total work is bounded far below
    2**53 by the SpGEMM flop limit.
    """
    per_row = np.bincount(rows, weights=weights, minlength=nrows)
    prefix = np.empty(nrows + 1, dtype=np.int64)
    prefix[0] = 0
    np.cumsum(per_row, out=prefix[1:], dtype=np.int64)
    return prefix


# ---------------------------------------------------------------------------
# worker-side state (primed once per region through the pool initializer)
# ---------------------------------------------------------------------------

_KW: dict = {}


def _init_mxm_worker(
    a_rows, a_cols, a_vals, a_indptr, b_indptr, b_cols, b_vals, nrows, ncols, semiring_name
):
    from repro.graphblas import semiring as _semiring_mod

    _KW.clear()
    _KW.update(
        a_rows=a_rows,
        a_cols=a_cols,
        a_vals=a_vals,
        a_indptr=a_indptr,
        b_indptr=b_indptr,
        b_cols=b_cols,
        b_vals=b_vals,
        nrows=int(nrows),
        ncols=int(ncols),
        semiring=_semiring_mod.get(semiring_name),
    )


def _mxm_block_worker(span):
    from repro.graphblas._kernels.spgemm import _expand_block

    lo, hi = span
    ai = _KW["a_indptr"]
    s, e = int(ai[lo]), int(ai[hi])
    return _expand_block(
        _KW["a_rows"][s:e],
        _KW["a_cols"][s:e],
        _KW["a_vals"][s:e],
        _KW["b_indptr"],
        _KW["b_cols"],
        _KW["b_vals"],
        _KW["semiring"],
        _KW["nrows"],
        _KW["ncols"],
    )


def _init_repair_worker(a_indptr, a_cols, b_indptr, b_cols, inner, ncols):
    import scipy.sparse as sp

    _KW.clear()
    # copies: scipy may sort/compact csr arrays in place, and the primed
    # arrays arrive as read-only mmaps
    bp = sp.csr_matrix(
        (
            np.ones(b_cols.size, dtype=np.int64),
            np.array(b_cols, dtype=np.int64),
            np.array(b_indptr, dtype=np.int64),
        ),
        shape=(int(inner), int(ncols)),
    )
    _KW.update(
        a_indptr=a_indptr, a_cols=a_cols, bp=bp, inner=int(inner), ncols=int(ncols)
    )


def _repair_block_worker(span):
    import scipy.sparse as sp

    lo, hi = span
    ai = _KW["a_indptr"]
    s, e = int(ai[lo]), int(ai[hi])
    ap = sp.csr_matrix(
        (
            np.ones(e - s, dtype=np.int64),
            np.array(_KW["a_cols"][s:e], dtype=np.int64),
            np.array(ai[lo : hi + 1] - ai[lo], dtype=np.int64),
        ),
        shape=(hi - lo, _KW["inner"]),
    )
    p = ap @ _KW["bp"]
    p.sort_indices()
    rows = np.repeat(
        np.arange(hi - lo, dtype=np.int64) + lo, np.diff(p.indptr)
    )
    return rows * np.int64(_KW["ncols"]) + p.indices.astype(np.int64)


def _init_mxv_worker(a_rows, a_cols, a_vals, indptr, u_idx, u_vals, ncols, semiring_name):
    from repro.graphblas import semiring as _semiring_mod

    _KW.clear()
    _KW.update(
        a_rows=a_rows,
        a_cols=a_cols,
        a_vals=a_vals,
        indptr=indptr,
        u_idx=u_idx,
        u_vals=u_vals,
        ncols=int(ncols),
        semiring=_semiring_mod.get(semiring_name),
    )


def _mxv_block_worker(span):
    from repro.graphblas._kernels.spmv import _mxv_serial

    lo, hi = span
    ip = _KW["indptr"]
    s, e = int(ip[lo]), int(ip[hi])
    ncols = _KW["ncols"]
    return _mxv_serial(
        (_KW["a_rows"][s:e], _KW["a_cols"][s:e], _KW["a_vals"][s:e], hi - lo, ncols),
        (_KW["u_idx"], _KW["u_vals"], ncols),
        _KW["semiring"],
    )


def _init_reduce_worker(rows, values, indptr, monoid_name):
    from repro.graphblas.monoid import MONOIDS

    _KW.clear()
    _KW.update(rows=rows, values=values, indptr=indptr, monoid=MONOIDS[monoid_name])


def _reduce_block_worker(span):
    from repro.graphblas._kernels.reduce import _reduce_rows_serial

    lo, hi = span
    ip = _KW["indptr"]
    s, e = int(ip[lo]), int(ip[hi])
    return _reduce_rows_serial(_KW["rows"][s:e], _KW["values"][s:e], _KW["monoid"])


def _init_merge_worker(rows, cols, vals, indptr, dirty_rows, d_rows, d_cols, d_vals):
    _KW.clear()
    _KW.update(
        rows=rows,
        cols=cols,
        vals=vals,
        indptr=indptr,
        dirty_rows=dirty_rows,
        d_rows=d_rows,
        d_cols=d_cols,
        d_vals=d_vals,
        d_lo=np.searchsorted(d_rows, dirty_rows),
        d_hi=np.searchsorted(d_rows, dirty_rows, side="right"),
    )


def _merge_block_worker(span):
    from repro.graphblas._kernels.freeze import _splice_range

    i0, i1 = span
    return _splice_range(
        _KW["rows"],
        _KW["cols"],
        _KW["vals"],
        _KW["indptr"],
        _KW["dirty_rows"],
        _KW["d_lo"],
        _KW["d_hi"],
        _KW["d_rows"],
        _KW["d_cols"],
        _KW["d_vals"],
        i0,
        i1,
    )


# ---------------------------------------------------------------------------
# kernel entry points (return None => caller runs the serial path)
# ---------------------------------------------------------------------------


def _named_semiring(semiring) -> bool:
    from repro.graphblas import semiring as _semiring_mod

    return _semiring_mod.SEMIRINGS.get(semiring.name) is semiring


def parallel_mxm(a, b_indptr, b_cols, b_vals, b_ncols, semiring, lengths, flops):
    """Row-parallel expansion SpGEMM over flop-balanced blocks of A."""
    a_rows, a_cols, a_vals, a_nrows, _a_ncols = a
    ex = _usable(flops)
    if ex is None or a_rows.size == 0 or not _named_semiring(semiring):
        return None
    from repro.graphblas._kernels.spgemm import FLOP_LIMIT

    prefix = _row_work_prefix(a_rows, lengths, a_nrows)
    if a_rows.size and int(np.diff(prefix).max()) > FLOP_LIMIT:
        return None  # a single row over the limit: the serial guard raises
    a_indptr = indptr_from_rows(a_rows, a_nrows)
    n_blocks = max(ex.workers * 2, -(-flops // max(FLOP_LIMIT, 1)))
    spans = _spans(_capped_bounds(prefix, n_blocks, FLOP_LIMIT))
    if len(spans) < 2:
        return None
    parts = locked_map(
        ex,
        _mxm_block_worker,
        spans,
        kernel="mxm",
        work=flops,
        initializer=_init_mxm_worker,
        initargs=(
            a_rows,
            a_cols,
            a_vals,
            a_indptr,
            b_indptr,
            b_cols,
            b_vals,
            int(a_nrows),
            int(b_ncols),
            semiring.name,
        ),
    )
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
        np.concatenate([p[2] for p in parts]),
    )


def parallel_structural_product(a_rows, a_cols, b_rows, b_cols, a_nrows, inner, ncols):
    """Sorted position keys of the boolean pattern product ``Ap @ Bp``.

    The annihilation-repair pass of the SciPy SpGEMM fast path; row blocks
    of A each multiply against the full B pattern and return their keys
    already sorted, so the parent's concatenation is the sorted key array.
    Returns ``None`` for the serial path.
    """
    ex = _executor_ready()
    if ex is None or a_rows.size == 0 or b_rows.size == 0:
        return None  # before any O(nnz) prework: the default config is serial
    # Flop estimate without materialising B's indptr: per-column degrees of
    # (sorted canonical) b_rows via searchsorted -- O(nnz(A) log nnz(B)),
    # so a small delta A against a huge B pays nothing when below cutoff.
    lengths = np.searchsorted(b_rows, a_cols, side="right") - np.searchsorted(
        b_rows, a_cols, side="left"
    )
    flops = int(lengths.sum())
    if flops < get_parallel_cutoff():
        return None
    b_indptr = indptr_from_rows(b_rows, inner)
    prefix = _row_work_prefix(a_rows, lengths, a_nrows)
    a_indptr = indptr_from_rows(a_rows, a_nrows)
    spans = _spans(balanced_bounds(prefix, ex.workers * 2))
    if len(spans) < 2:
        return None
    parts = locked_map(
        ex,
        _repair_block_worker,
        spans,
        kernel="structural",
        work=flops,
        initializer=_init_repair_worker,
        initargs=(a_indptr, a_cols, b_indptr, b_cols, int(inner), int(ncols)),
    )
    return np.concatenate(parts) if parts else np.zeros(0, np.int64)


def parallel_mxv(a, u, semiring, indptr=None):
    """Row-parallel SpMV over nnz-balanced blocks of A; None => serial."""
    a_rows, a_cols, a_vals, a_nrows, a_ncols = a
    ex = _usable(a_rows.size)
    if ex is None or not _named_semiring(semiring):
        return None
    if indptr is None:
        indptr = indptr_from_rows(a_rows, a_nrows)
    spans = _spans(balanced_bounds(indptr, ex.workers * 4))
    if len(spans) < 2:
        return None
    u_idx, u_vals, _u_size = u
    parts = locked_map(
        ex,
        _mxv_block_worker,
        spans,
        kernel="mxv",
        work=int(a_rows.size),
        initializer=_init_mxv_worker,
        initargs=(
            a_rows,
            a_cols,
            a_vals,
            indptr,
            u_idx,
            u_vals,
            int(a_ncols),
            semiring.name,
        ),
    )
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
    )


def parallel_reduce_rows(rows, values, monoid, indptr=None):
    """Row-parallel row-wise reduction; None => serial.

    Requires a caller-supplied ``indptr``: matrix-level callers have one
    cached, while :func:`..reduce.reduce_groups` feeds *arbitrary* group
    ids (e.g. encoded position keys) for which building an indptr would
    cost O(max id) memory -- those stay serial.
    """
    from repro.graphblas.monoid import MONOIDS

    if indptr is None:
        return None
    ex = _usable(rows.size)
    if ex is None or rows.size == 0 or MONOIDS.get(monoid.name) is not monoid:
        return None
    spans = _spans(balanced_bounds(indptr, ex.workers * 4))
    if len(spans) < 2:
        return None
    parts = locked_map(
        ex,
        _reduce_block_worker,
        spans,
        kernel="reduce",
        work=int(rows.size),
        initializer=_init_reduce_worker,
        initargs=(rows, values, indptr, monoid.name),
    )
    return (
        np.concatenate([p[0] for p in parts]),
        np.concatenate([p[1] for p in parts]),
    )


def parallel_merge_dirty_rows(
    rows, cols, vals, indptr, dirty_rows, d_rows, d_cols, d_vals
):
    """Parallel span-splice of the dirty-row freeze; None => serial.

    Blocks of dirty rows are balanced by the *source position* they cover
    (the memcpy volume); each worker splices its sub-range exactly like the
    serial loop, and the parent appends the global tail.
    """
    ex = _usable(rows.size + d_rows.size)
    if ex is None or dirty_rows.size < 2:
        return None
    # coverage prefix: how far into the source arrays each dirty row reaches
    prefix = np.concatenate(
        [np.zeros(1, np.int64), np.asarray(indptr[dirty_rows + 1], dtype=np.int64)]
    )
    np.maximum.accumulate(prefix, out=prefix)
    spans = _spans(balanced_bounds(prefix, ex.workers * 2))
    if len(spans) < 2:
        return None
    parts = locked_map(
        ex,
        _merge_block_worker,
        spans,
        kernel="freeze",
        work=int(rows.size + d_rows.size),
        initializer=_init_merge_worker,
        initargs=(rows, cols, vals, indptr, dirty_rows, d_rows, d_cols, d_vals),
    )
    last_end = int(indptr[dirty_rows[-1] + 1])
    r_parts = [p[0] for p in parts]
    c_parts = [p[1] for p in parts]
    v_parts = [p[2] for p in parts]
    if last_end < rows.size:  # tail after the last dirty row
        r_parts.append(rows[last_end:])
        c_parts.append(cols[last_end:])
        v_parts.append(vals[last_end:])
    return (
        np.concatenate(r_parts),
        np.concatenate(c_parts),
        np.concatenate(v_parts),
    )
