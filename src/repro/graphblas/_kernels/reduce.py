"""Reductions: matrix -> vector (row-wise) and matrix/vector -> scalar.

Row-wise reduction exploits canonical ordering: entries of one row are
contiguous, so a single boundary scan plus ``ufunc.reduceat`` covers all
non-empty rows.  Empty rows produce no output entry (GraphBLAS semantics:
the result is sparse, not identity-filled).
"""

from __future__ import annotations

import numpy as np

from repro.graphblas._kernels import parallel as _parallel
from repro.graphblas._kernels.coo import segment_reduce

__all__ = ["reduce_rows", "reduce_groups"]


def reduce_rows(rows: np.ndarray, values: np.ndarray, monoid, indptr=None):
    """Reduce each non-empty row; returns (row_indices, reduced_values).

    ``indptr`` is an optional cached CSR row pointer; the parallel path
    (large inputs, kernel executor installed) engages only when it is
    supplied, balancing row blocks by nnz -- rows never span blocks, so
    block results concatenate.  Callers with arbitrary huge ids
    (:func:`reduce_groups` on encoded keys) pass none and stay serial,
    because an indptr over the id space would cost O(max id).
    """
    if rows.size == 0:
        return rows[:0], values[:0]
    res = _parallel.parallel_reduce_rows(rows, values, monoid, indptr)
    if res is not None:
        return res
    return _reduce_rows_serial(rows, values, monoid)


def _reduce_rows_serial(rows: np.ndarray, values: np.ndarray, monoid):
    """Single-block boundary scan + ``reduceat`` (also the per-block body)."""
    if rows.size == 0:
        return rows[:0], values[:0]
    boundary = np.empty(rows.size, dtype=np.bool_)
    boundary[0] = True
    np.not_equal(rows[1:], rows[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    return rows[starts], segment_reduce(values, starts, monoid.op)


def reduce_groups(group_ids: np.ndarray, values: np.ndarray, monoid):
    """Reduce values by arbitrary (unsorted) integer group ids.

    Sorts by group first, then segment-reduces.  Used by kernels that produce
    unsorted intermediate products (e.g. per-comment scatter in Q2).
    """
    if group_ids.size == 0:
        return group_ids[:0], values[:0]
    order = np.argsort(group_ids, kind="stable")
    return reduce_rows(group_ids[order], values[order], monoid)
