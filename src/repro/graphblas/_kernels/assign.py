"""Submatrix/subvector assign kernels (GrB_assign).

``GrB_assign`` writes a whole object into a rectangular region of a larger
one: ``C(I, J) accum= A``.  The kernel computes the *Z phase* of the
two-phase write -- the full-C-space content after the regional assignment,
before the (whole-C) mask is applied -- so the caller can funnel the result
through the shared masked-write kernel.

The region-membership tests are O(nnz log |I|) searchsorted probes against
the sorted index sets; the |I| x |J| region is never materialised, so
assigning into a huge region (e.g. GrB_ALL rows) costs only the entries
actually present.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas._kernels.coo import encode, in1d_sorted
from repro.graphblas._kernels.merge import union_merge
from repro.util.validation import ReproError

__all__ = ["assign_submatrix_z", "assign_subvector_z", "check_unique_ids"]


def check_unique_ids(ids: np.ndarray, name: str) -> np.ndarray:
    """GrB_assign requires index sets without repeats; validate and return."""
    if ids.size != np.unique(ids).size:
        raise ReproError(f"assign: {name} contains duplicate indices")
    return ids


def _region_membership(rows, cols, row_ids_sorted, col_ids_sorted):
    """Boolean mask of COO entries lying inside the I x J region."""
    row_in = in1d_sorted(rows, row_ids_sorted)
    col_in = in1d_sorted(cols, col_ids_sorted)
    return row_in & col_in


def assign_submatrix_z(c_coo, a_coo, row_ids, col_ids, accum, ncols_c):
    """Z-phase content of ``C(I, J) accum= A`` as encoded keys/values.

    ``c_coo``/``a_coo`` are ``(rows, cols, values)`` triples; ``row_ids`` and
    ``col_ids`` map A's row/col indices into C's index space.  Without an
    accumulator the region is overwritten (entries of C inside I x J but not
    targeted by A are *deleted*, per the spec); with one, old and new merge.
    """
    c_rows, c_cols, c_vals = c_coo
    a_rows, a_cols, a_vals = a_coo

    # Map A into C coordinates.  A is canonical, but the index maps need not
    # be monotone, so the mapped triples must be re-sorted.
    t_rows = row_ids[a_rows]
    t_cols = col_ids[a_cols]
    t_keys = encode(t_rows, t_cols, ncols_c)
    order = np.argsort(t_keys, kind="stable")
    t_keys = t_keys[order]
    t_vals = np.asarray(a_vals)[order]

    row_sorted = np.sort(row_ids)
    col_sorted = np.sort(col_ids)
    in_region = _region_membership(c_rows, c_cols, row_sorted, col_sorted)
    c_keys = encode(c_rows, c_cols, ncols_c)

    if accum is None:
        survivors_keys = c_keys[~in_region]
        survivors_vals = c_vals[~in_region]
        region_keys, region_vals = t_keys, t_vals
    else:
        survivors_keys = c_keys[~in_region]
        survivors_vals = c_vals[~in_region]
        region_keys, region_vals = union_merge(
            c_keys[in_region], c_vals[in_region], t_keys, t_vals, accum
        )

    # Survivors (outside region) and region content are disjoint key sets.
    keys = np.concatenate([survivors_keys, region_keys])
    if keys.size == 0:
        return keys, region_vals[:0]
    vdt = np.promote_types(survivors_vals.dtype, region_vals.dtype)
    vals = np.concatenate(
        [survivors_vals.astype(vdt, copy=False), region_vals.astype(vdt, copy=False)]
    )
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


def assign_subvector_z(c_pair, u_pair, ids, accum):
    """Z-phase content of ``w(I) accum= u`` as (indices, values)."""
    c_idx, c_vals = c_pair
    u_idx, u_vals = u_pair

    t_idx = ids[u_idx]
    order = np.argsort(t_idx, kind="stable")
    t_idx = t_idx[order]
    t_vals = np.asarray(u_vals)[order]

    ids_sorted = np.sort(ids)
    in_region = in1d_sorted(c_idx, ids_sorted)

    if accum is None:
        region_idx, region_vals = t_idx, t_vals
    else:
        region_idx, region_vals = union_merge(
            c_idx[in_region], c_vals[in_region], t_idx, t_vals, accum
        )

    keys = np.concatenate([c_idx[~in_region], region_idx])
    if keys.size == 0:
        return keys, region_vals[:0]
    vdt = np.promote_types(c_vals.dtype, region_vals.dtype)
    vals = np.concatenate(
        [
            c_vals[~in_region].astype(vdt, copy=False),
            region_vals.astype(vdt, copy=False),
        ]
    )
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]
