"""Sorted-merge kernels: eWiseAdd, eWiseMult, and masked/accumulated writes.

All functions take *encoded key* arrays (sorted, unique -- see
``_kernels.coo``) plus aligned value arrays, and return the same.  The merge
strategy is the classic two-pointer union done branch-free: concatenate,
stable-argsort, and detect equal-key neighbour pairs.  Stability guarantees
the A-side entry precedes the B-side entry inside each pair, so operand order
for non-commutative ops (``minus``, ``first``, ``div``) is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas._kernels.coo import in1d_sorted

__all__ = ["union_merge", "intersect_merge", "write_mask_accum"]


def _common_dtype(a: np.ndarray, b: np.ndarray) -> np.dtype:
    return np.promote_types(a.dtype, b.dtype)


def _union_small(big_keys, big_vals, small_keys, small_vals, op, small_is_b):
    """Union-merge a tiny sorted side into a large one without sorting.

    The serving steady state merges O(Δ) updates into O(n) state on every
    micro-batch; concat + argsort pays O((n+Δ) log(n+Δ)) for what a
    searchsorted + insert does in O(n + Δ log n).  ``small_is_b`` preserves
    operand order for non-commutative ops.
    """
    vdt = _common_dtype(big_vals, small_vals)
    pos = np.searchsorted(big_keys, small_keys)
    pos_c = np.minimum(pos, big_keys.size - 1)
    dup = big_keys[pos_c] == small_keys
    big_vals = big_vals.astype(vdt, copy=False)
    small_vals = small_vals.astype(vdt, copy=False)
    combined = None
    if dup.any():
        idx = pos[dup]
        if small_is_b:
            combined = np.asarray(op(big_vals[idx], small_vals[dup]))
        else:
            combined = np.asarray(op(small_vals[dup], big_vals[idx]))
    new = ~dup
    if new.any():
        where = pos[new]
        # np.insert keeps insertion order for equal positions, and
        # small_keys is sorted unique, so the result stays sorted unique --
        # and this is the single O(n) copy of the big side
        out_keys = np.insert(big_keys, where, small_keys[new])
        out_vals = np.insert(big_vals, where, small_vals[new])
    else:
        out_keys = big_keys.copy()
        out_vals = big_vals.copy()
    if combined is not None:
        if combined.dtype != out_vals.dtype:
            out_vals = out_vals.astype(
                np.promote_types(out_vals.dtype, combined.dtype)
            )
        idx = pos[dup]
        if new.any():
            # each combined value shifted by the inserts landing before it
            idx = idx + np.searchsorted(where, idx, side="right")
        out_vals[idx] = combined
    return out_keys, out_vals


def union_merge(keys_a, vals_a, keys_b, vals_b, op):
    """Set-union merge (GrB_eWiseAdd semantics).

    Positions present in both inputs get ``op(a, b)``; positions present in
    exactly one input copy that value through unchanged.
    """
    if keys_a.size == 0:
        return keys_b.copy(), vals_b.copy()
    if keys_b.size == 0:
        return keys_a.copy(), vals_a.copy()
    if keys_b.size * 16 <= keys_a.size:
        return _union_small(keys_a, vals_a, keys_b, vals_b, op, small_is_b=True)
    if keys_a.size * 16 <= keys_b.size:
        return _union_small(keys_b, vals_b, keys_a, vals_a, op, small_is_b=False)
    keys = np.concatenate([keys_a, keys_b])
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    dup_with_next = np.empty(keys.size, dtype=np.bool_)
    np.equal(keys[:-1], keys[1:], out=dup_with_next[:-1])
    dup_with_next[-1] = False

    vdt = _common_dtype(vals_a, vals_b)
    vals = np.concatenate(
        [vals_a.astype(vdt, copy=False), vals_b.astype(vdt, copy=False)]
    )[order]

    pair_first = np.flatnonzero(dup_with_next)
    if pair_first.size == 0:
        return keys, vals
    # Stable sort => vals[pair_first] is from A, vals[pair_first+1] from B.
    combined = op(vals[pair_first], vals[pair_first + 1])
    keep = np.ones(keys.size, dtype=np.bool_)
    keep[pair_first + 1] = False
    out_keys = keys[keep]
    out_vals = vals[keep]
    if combined.dtype != out_vals.dtype:
        out_vals = out_vals.astype(np.promote_types(out_vals.dtype, combined.dtype))
    # pair_first positions survive `keep`; recompute their compacted indices.
    out_vals[np.cumsum(keep)[pair_first] - 1] = combined
    return out_keys, out_vals


def intersect_merge(keys_a, vals_a, keys_b, vals_b, op):
    """Set-intersection merge (GrB_eWiseMult semantics)."""
    if keys_a.size == 0 or keys_b.size == 0:
        empty_vals = op(vals_a[:0], vals_b[:0])
        return keys_a[:0], np.asarray(empty_vals)
    # Intersect via searchsorted on the smaller side for cache friendliness.
    if keys_a.size <= keys_b.size:
        hit = in1d_sorted(keys_a, keys_b)
        ka = keys_a[hit]
        va = vals_a[hit]
        pos = np.searchsorted(keys_b, ka)
        vb = vals_b[pos]
    else:
        hit = in1d_sorted(keys_b, keys_a)
        ka = keys_b[hit]
        vb = vals_b[hit]
        pos = np.searchsorted(keys_a, ka)
        va = vals_a[pos]
    return ka, np.asarray(op(va, vb))


def write_mask_accum(
    c_keys,
    c_vals,
    t_keys,
    t_vals,
    *,
    mask_keys=None,
    mask_complement: bool = False,
    replace: bool = False,
    accum=None,
):
    """The GraphBLAS two-phase write: ``C<M> accum= T`` with optional replace.

    Implements the specification exactly:

    1. ``Z = T`` if no accumulator, else the union-merge of C and T under
       ``accum`` (C-entries untouched by T survive into Z).
    2. Final content: inside the mask take Z; outside the mask take the old C
       unless ``replace`` clears it.

    ``mask_keys`` is the sorted array of mask-true positions (already
    structural/value-filtered by the caller); None means "no mask" (all
    positions writable).
    """
    if accum is None:
        z_keys, z_vals = t_keys, t_vals
    else:
        z_keys, z_vals = union_merge(c_keys, c_vals, t_keys, t_vals, accum)

    if mask_keys is None:
        return z_keys, z_vals

    in_mask_z = in1d_sorted(z_keys, mask_keys)
    if mask_complement:
        in_mask_z = ~in_mask_z
    kept_z_keys = z_keys[in_mask_z]
    kept_z_vals = z_vals[in_mask_z]

    if replace:
        return kept_z_keys, kept_z_vals

    # Outside the mask the old C entries survive.
    in_mask_c = in1d_sorted(c_keys, mask_keys)
    if mask_complement:
        in_mask_c = ~in_mask_c
    kept_c_keys = c_keys[~in_mask_c]
    kept_c_vals = c_vals[~in_mask_c]
    # The two kept sets are disjoint (one inside the mask, one outside), so a
    # plain sorted merge by concatenation + argsort suffices.
    keys = np.concatenate([kept_c_keys, kept_z_keys])
    vdt = _common_dtype(kept_c_vals, kept_z_vals) if keys.size else kept_z_vals.dtype
    vals = np.concatenate(
        [kept_c_vals.astype(vdt, copy=False), kept_z_vals.astype(vdt, copy=False)]
    )
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]
