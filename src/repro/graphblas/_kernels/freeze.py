"""Dirty-row splice: the incremental freeze kernel of the dynamic storage.

A :class:`~repro.graphblas.dynamic.DynamicMatrix` freezes into a canonical
compute :class:`~repro.graphblas.matrix.Matrix` at phase boundaries.  When
only a few rows changed since the last freeze, re-canonicalising the whole
matrix (sort of every nnz) is wasted work: canonical row-major COO keeps
each row contiguous, so replacing the touched rows is pure span splicing --
the untouched stretches *between* dirty rows are block-copied verbatim.

:func:`merge_dirty_rows` does exactly that: given the previous frozen
arrays, their ``indptr``, the set of dirty rows, and the replacement
entries for those rows (already canonical), it produces the new canonical
arrays -- and the new ``indptr`` as a by-product -- with one
``np.concatenate`` of ~2k+1 contiguous slices (k = dirty rows) per array:
O(nnz) memcpy, no sort, no per-entry index arithmetic.  Only the
replacement entries themselves (O(Δ·degree)) ever needed sorting, which
the caller did per dirty row.
"""

from __future__ import annotations

import numpy as np

__all__ = ["merge_dirty_rows"]


def merge_dirty_rows(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    indptr: np.ndarray,
    nrows: int,
    dirty_rows: np.ndarray,
    d_rows: np.ndarray,
    d_cols: np.ndarray,
    d_vals: np.ndarray,
):
    """Replace whole rows of a canonical COO matrix, preserving canonicality.

    ``rows``/``cols``/``vals`` are the previous frozen arrays with row
    pointer ``indptr`` (length ``nrows + 1``).  ``dirty_rows`` is the sorted
    unique array of row ids whose content is replaced wholesale;
    ``d_rows``/``d_cols``/``d_vals`` hold the replacement entries in
    canonical (row-major, col-sorted, unique) order, with every ``d_rows``
    value a member of ``dirty_rows`` (a dirty row with no replacement
    entries simply becomes empty).

    Returns ``(rows, cols, vals, indptr)`` of the spliced matrix.
    """
    # where each dirty row's replacement entries start/end
    d_lo = np.searchsorted(d_rows, dirty_rows)
    d_hi = np.searchsorted(d_rows, dirty_rows, side="right")

    r_chunks: list[np.ndarray] = []
    c_chunks: list[np.ndarray] = []
    v_chunks: list[np.ndarray] = []
    prev = 0
    for r, ds, de in zip(dirty_rows.tolist(), d_lo.tolist(), d_hi.tolist()):
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        if lo > prev:  # untouched stretch before this dirty row
            r_chunks.append(rows[prev:lo])
            c_chunks.append(cols[prev:lo])
            v_chunks.append(vals[prev:lo])
        if de > ds:  # the row's replacement entries
            r_chunks.append(d_rows[ds:de])
            c_chunks.append(d_cols[ds:de])
            v_chunks.append(d_vals[ds:de])
        prev = hi
    if prev < rows.size:  # tail after the last dirty row
        r_chunks.append(rows[prev:])
        c_chunks.append(cols[prev:])
        v_chunks.append(vals[prev:])

    if r_chunks:
        out_rows = np.concatenate(r_chunks)
        out_cols = np.concatenate(c_chunks)
        out_vals = np.concatenate(v_chunks)
    else:
        out_rows = np.zeros(0, dtype=np.int64)
        out_cols = np.zeros(0, dtype=np.int64)
        out_vals = np.zeros(0, dtype=vals.dtype)

    # indptr: shift everything after each dirty row by that row's size change
    shift = np.zeros(nrows + 1, dtype=np.int64)
    shift[dirty_rows + 1] = (d_hi - d_lo) - (
        indptr[dirty_rows + 1] - indptr[dirty_rows]
    )
    new_indptr = indptr + np.cumsum(shift)
    return out_rows, out_cols, out_vals, new_indptr
