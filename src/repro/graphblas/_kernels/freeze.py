"""Dirty-row splice: the incremental freeze kernel of the dynamic storage.

A :class:`~repro.graphblas.dynamic.DynamicMatrix` freezes into a canonical
compute :class:`~repro.graphblas.matrix.Matrix` at phase boundaries.  When
only a few rows changed since the last freeze, re-canonicalising the whole
matrix (sort of every nnz) is wasted work: canonical row-major COO keeps
each row contiguous, so replacing the touched rows is pure span splicing --
the untouched stretches *between* dirty rows are block-copied verbatim.

:func:`merge_dirty_rows` does exactly that: given the previous frozen
arrays, their ``indptr``, the set of dirty rows, and the replacement
entries for those rows (already canonical), it produces the new canonical
arrays -- and the new ``indptr`` as a by-product -- with one
``np.concatenate`` of ~2k+1 contiguous slices (k = dirty rows) per array:
O(nnz) memcpy, no sort, no per-entry index arithmetic.  Only the
replacement entries themselves (O(Δ·degree)) ever needed sorting, which
the caller did per dirty row.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas._kernels import parallel as _parallel

__all__ = ["merge_dirty_rows"]


def _splice_range(
    rows, cols, vals, indptr, dirty_rows, d_lo, d_hi, d_rows, d_cols, d_vals, i0, i1
):
    """Splice the sub-range ``dirty_rows[i0:i1)`` into its source span.

    Covers source entries from the end of dirty row ``i0 - 1`` (or 0) up to
    the end of dirty row ``i1 - 1`` -- the global tail after the last dirty
    row is the caller's.  Disjoint ascending ranges concatenate into the
    full splice, which is what makes the freeze row-parallelisable.
    """
    r_chunks: list[np.ndarray] = []
    c_chunks: list[np.ndarray] = []
    v_chunks: list[np.ndarray] = []
    prev = 0 if i0 == 0 else int(indptr[dirty_rows[i0 - 1] + 1])
    for j in range(i0, i1):
        r = int(dirty_rows[j])
        ds, de = int(d_lo[j]), int(d_hi[j])
        lo, hi = int(indptr[r]), int(indptr[r + 1])
        if lo > prev:  # untouched stretch before this dirty row
            r_chunks.append(rows[prev:lo])
            c_chunks.append(cols[prev:lo])
            v_chunks.append(vals[prev:lo])
        if de > ds:  # the row's replacement entries
            r_chunks.append(d_rows[ds:de])
            c_chunks.append(d_cols[ds:de])
            v_chunks.append(d_vals[ds:de])
        prev = hi
    if r_chunks:
        return (
            np.concatenate(r_chunks),
            np.concatenate(c_chunks),
            np.concatenate(v_chunks),
        )
    return (
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=vals.dtype),
    )


def merge_dirty_rows(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    indptr: np.ndarray,
    nrows: int,
    dirty_rows: np.ndarray,
    d_rows: np.ndarray,
    d_cols: np.ndarray,
    d_vals: np.ndarray,
):
    """Replace whole rows of a canonical COO matrix, preserving canonicality.

    ``rows``/``cols``/``vals`` are the previous frozen arrays with row
    pointer ``indptr`` (length ``nrows + 1``).  ``dirty_rows`` is the sorted
    unique array of row ids whose content is replaced wholesale;
    ``d_rows``/``d_cols``/``d_vals`` hold the replacement entries in
    canonical (row-major, col-sorted, unique) order, with every ``d_rows``
    value a member of ``dirty_rows`` (a dirty row with no replacement
    entries simply becomes empty).

    Returns ``(rows, cols, vals, indptr)`` of the spliced matrix.
    """
    # where each dirty row's replacement entries start/end (also feeds the
    # indptr shift below, so computed on both paths)
    d_lo = np.searchsorted(d_rows, dirty_rows)
    d_hi = np.searchsorted(d_rows, dirty_rows, side="right")
    spliced = _parallel.parallel_merge_dirty_rows(
        rows, cols, vals, indptr, dirty_rows, d_rows, d_cols, d_vals
    )
    if spliced is not None:
        out_rows, out_cols, out_vals = spliced
    else:
        body = _splice_range(
            rows, cols, vals, indptr, dirty_rows, d_lo, d_hi,
            d_rows, d_cols, d_vals, 0, dirty_rows.size,
        )
        prev = int(indptr[dirty_rows[-1] + 1]) if dirty_rows.size else 0
        if prev < rows.size:  # tail after the last dirty row
            out_rows = np.concatenate([body[0], rows[prev:]])
            out_cols = np.concatenate([body[1], cols[prev:]])
            out_vals = np.concatenate([body[2], vals[prev:]])
        else:
            out_rows, out_cols, out_vals = body

    # indptr: shift everything after each dirty row by that row's size change
    shift = np.zeros(nrows + 1, dtype=np.int64)
    shift[dirty_rows + 1] = (d_hi - d_lo) - (
        indptr[dirty_rows + 1] - indptr[dirty_rows]
    )
    new_indptr = indptr + np.cumsum(shift)
    return out_rows, out_cols, out_vals, new_indptr
