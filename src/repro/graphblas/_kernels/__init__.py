"""Vectorised sparse kernels operating on raw NumPy arrays.

Everything in this package works on *canonical sorted COO* data:

* matrices: ``(rows, cols, values)`` lexsorted by ``(row, col)``, unique
* vectors:  ``(indices, values)`` sorted, unique

Canonical row-major COO doubles as CSR (``indices``/``data`` are exactly the
CSR arrays; ``indptr`` is derived with one ``bincount``+``cumsum``), which is
why the two representations never need to be reconciled.

No kernel here allocates Python objects per entry; hot paths are lexsort
merges, ``np.repeat`` expansions and ``ufunc.reduceat`` segment reductions,
per the hpc-parallel guidance (vectorise; mind memory traffic; measure).

The kernels are not serial-only: :mod:`repro.graphblas._kernels.parallel`
re-runs the big ones (SpGEMM, SpMV, row reduce, dirty-row merge) over
nnz-balanced row blocks on the process-wide kernel executor
(``REPRO_WORKERS`` / :func:`~repro.graphblas._kernels.parallel.
set_kernel_executor`) once the estimated work clears the
``REPRO_PARALLEL_CUTOFF`` -- bit-identical results, serial fallback below
the cutoff.
"""
