"""Monoids: an associative, commutative binary op plus a typed identity.

A monoid is what a GraphBLAS reduction or the "add" half of a semiring needs.
Identities are dtype-dependent (MIN's identity is ``+inf`` for floats but
``INT64_MAX`` for 64-bit ints), so :meth:`Monoid.identity` takes the
:class:`~repro.graphblas.types.DataType`.  A *terminal* value, when present,
allows reductions to stop early (e.g. LOR terminates at True) -- our
vectorised kernels do not exploit it, but it is recorded because the paper's
SuiteSparse backend does and tests assert the algebra is declared correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.graphblas import ops
from repro.graphblas.types import DataType

__all__ = [
    "Monoid",
    "plus_monoid",
    "times_monoid",
    "min_monoid",
    "max_monoid",
    "lor_monoid",
    "land_monoid",
    "lxor_monoid",
    "any_monoid",
    "MONOIDS",
]


@dataclass(frozen=True)
class Monoid:
    """A commutative monoid over any GraphBLAS type."""

    name: str
    op: ops.BinaryOp
    _identity: Callable[[DataType], object]
    _terminal: Optional[Callable[[DataType], object]] = None

    def __post_init__(self):
        if not self.op.associative:
            raise ValueError(f"monoid {self.name}: op {self.op.name} is not associative")

    def identity(self, dtype: DataType):
        """Identity element cast to ``dtype``."""
        return dtype.np_dtype.type(self._identity(dtype))

    def terminal(self, dtype: DataType):
        """Terminal (annihilator) element, or None if the monoid has none."""
        if self._terminal is None:
            return None
        return dtype.np_dtype.type(self._terminal(dtype))

    @property
    def ufunc(self) -> Optional[np.ufunc]:
        return self.op.ufunc

    def reduce_array(self, values: np.ndarray, dtype: DataType):
        """Reduce a 1-D array to a scalar; identity for empty input."""
        if values.size == 0:
            return self.identity(dtype)
        if self.ufunc is not None:
            return dtype.cast(self.ufunc.reduce(values))
        acc = values[0]
        for v in values[1:]:
            acc = self.op(acc, v)
        return dtype.cast(np.asarray(acc))[()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Monoid({self.name})"


plus_monoid = Monoid("plus", ops.plus, lambda dt: 0)
times_monoid = Monoid("times", ops.times, lambda dt: 1, _terminal=lambda dt: 0)
min_monoid = Monoid("min", ops.min, lambda dt: dt.max_value(), _terminal=lambda dt: dt.min_value())
max_monoid = Monoid("max", ops.max, lambda dt: dt.min_value(), _terminal=lambda dt: dt.max_value())
lor_monoid = Monoid("lor", ops.lor, lambda dt: False, _terminal=lambda dt: True)
land_monoid = Monoid("land", ops.land, lambda dt: True, _terminal=lambda dt: False)
lxor_monoid = Monoid("lxor", ops.lxor, lambda dt: False)
# ANY monoid: identity is unobservable (any value is a valid result); use 0.
any_monoid = Monoid("any", ops.any_, lambda dt: 0)

MONOIDS = {
    m.name: m
    for m in (
        plus_monoid,
        times_monoid,
        min_monoid,
        max_monoid,
        lor_monoid,
        land_monoid,
        lxor_monoid,
        any_monoid,
    )
}
