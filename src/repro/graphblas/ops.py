"""Operators: unary, binary and index-unary (select) ops.

Operator objects are *dtype-generic*: they operate on whole NumPy arrays and
let NumPy handle elementwise typing, after which the calling kernel casts the
result into the output object's type.  Binary ops carry their backing
``np.ufunc`` when one exists so monoid reductions can use
``ufunc.reduceat`` / ``ufunc.at`` fast paths; ops without a ufunc (e.g.
``first``) still work everywhere except as a reduction monoid.

Naming follows the GraphBLAS C API (``GrB_PLUS`` -> :data:`plus`,
``GxB_PAIR`` -> :data:`pair`, ...).  Index-unary ops implement the
``GrB_select``/``GxB_select`` predicates (``VALUEEQ``, ``TRIL``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = [
    "UnaryOp",
    "BinaryOp",
    "IndexUnaryOp",
    # unary
    "identity",
    "ainv",
    "abs_",
    "lnot",
    "one",
    "minv",
    # binary
    "plus",
    "minus",
    "times",
    "div",
    "min",
    "max",
    "first",
    "second",
    "pair",
    "any_",
    "lor",
    "land",
    "lxor",
    "eq",
    "ne",
    "gt",
    "lt",
    "ge",
    "le",
    "BINARY_OPS",
    "UNARY_OPS",
    # index-unary / select
    "valueeq",
    "valuene",
    "valuegt",
    "valuege",
    "valuelt",
    "valuele",
    "rowindex_le",
    "colindex_le",
    "tril",
    "triu",
    "diag",
    "offdiag",
    "SELECT_OPS",
    # positional apply (GrB_apply with IndexUnaryOp)
    "IndexApplyOp",
    "rowindex",
    "colindex",
    "diagindex",
    "INDEX_APPLY_OPS",
]


@dataclass(frozen=True)
class UnaryOp:
    """Elementwise unary operator ``z = f(x)``."""

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    bool_result: bool = False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnaryOp({self.name})"


@dataclass(frozen=True)
class BinaryOp:
    """Elementwise binary operator ``z = f(x, y)``.

    Attributes
    ----------
    ufunc:
        The backing NumPy ufunc if the op is one (enables ``reduceat``/``at``
        segment reductions and scatter-accumulate fast paths).
    bool_result:
        True for comparison ops whose natural output type is BOOL.
    commutative / associative:
        Algebraic properties; associativity is required for use in a monoid.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    ufunc: Optional[np.ufunc] = field(default=None)
    bool_result: bool = False
    commutative: bool = False
    associative: bool = False

    def __call__(self, x, y) -> np.ndarray:
        return self.fn(x, y)

    def bind_second(self, value) -> UnaryOp:
        """Curry the right operand: ``f(x) = op(x, value)`` (GrB_apply BinaryOp+scalar)."""
        return UnaryOp(
            f"{self.name}_bound2({value!r})",
            lambda x, _op=self.fn, _v=value: _op(x, _v),
            bool_result=self.bool_result,
        )

    def bind_first(self, value) -> UnaryOp:
        """Curry the left operand: ``f(y) = op(value, y)``."""
        return UnaryOp(
            f"{self.name}_bound1({value!r})",
            lambda y, _op=self.fn, _v=value: _op(_v, y),
            bool_result=self.bool_result,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BinaryOp({self.name})"


@dataclass(frozen=True)
class IndexUnaryOp:
    """Select predicate ``keep = f(value, row, col, thunk)``.

    For vectors ``col`` is passed as zeros.  The thunk is the scalar ``k`` in
    the ``GxB_select`` signature (e.g. the comparison constant of VALUEEQ).
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray, np.ndarray, object], np.ndarray]

    def __call__(self, values, rows, cols, thunk) -> np.ndarray:
        out = self.fn(values, rows, cols, thunk)
        return np.asarray(out, dtype=np.bool_)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexUnaryOp({self.name})"


# --------------------------------------------------------------------------
# Unary ops
# --------------------------------------------------------------------------

identity = UnaryOp("identity", lambda x: x)
ainv = UnaryOp("ainv", np.negative)
abs_ = UnaryOp("abs", np.abs)
lnot = UnaryOp("lnot", lambda x: ~np.asarray(x, dtype=np.bool_), bool_result=True)
one = UnaryOp("one", lambda x: np.ones_like(x))


def _minv(x):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(1.0, x)


minv = UnaryOp("minv", _minv)


def _safe_log(x):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(x)


def _safe_sqrt(x):
    with np.errstate(invalid="ignore"):
        return np.sqrt(x)


sqrt = UnaryOp("sqrt", _safe_sqrt)
exp = UnaryOp("exp", np.exp)
log = UnaryOp("log", _safe_log)
sign = UnaryOp("sign", np.sign)
floor = UnaryOp("floor", np.floor)
ceil = UnaryOp("ceil", np.ceil)

UNARY_OPS = {
    op.name: op
    for op in (identity, ainv, abs_, lnot, one, minv, sqrt, exp, log, sign, floor, ceil)
}


# --------------------------------------------------------------------------
# Binary ops
# --------------------------------------------------------------------------


def _bool2(fn):
    """Wrap a logical op so inputs are coerced to bool first."""

    def wrapped(x, y, _fn=fn):
        return _fn(np.asarray(x, dtype=np.bool_), np.asarray(y, dtype=np.bool_))

    return wrapped


plus = BinaryOp("plus", np.add, ufunc=np.add, commutative=True, associative=True)
minus = BinaryOp("minus", np.subtract, ufunc=np.subtract)
times = BinaryOp("times", np.multiply, ufunc=np.multiply, commutative=True, associative=True)


def _safe_div(x, y):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(x, y)


div = BinaryOp("div", _safe_div)
min = BinaryOp("min", np.minimum, ufunc=np.minimum, commutative=True, associative=True)
max = BinaryOp("max", np.maximum, ufunc=np.maximum, commutative=True, associative=True)
first = BinaryOp("first", lambda x, y: np.asarray(x), commutative=False, associative=True)
second = BinaryOp("second", lambda x, y: np.asarray(y), commutative=False, associative=True)
pair = BinaryOp(
    "pair",
    lambda x, y: np.ones(np.broadcast(np.asarray(x), np.asarray(y)).shape, dtype=np.int64),
    commutative=True,
    associative=False,
)
# GxB_ANY: "pick either operand" -- any deterministic choice is valid; we pick
# the first.  It is associative and commutative *as a specification*, because
# every result is an acceptable ANY-result.
any_ = BinaryOp("any", lambda x, y: np.asarray(x), commutative=True, associative=True)

lor = BinaryOp(
    "lor", _bool2(np.logical_or), ufunc=np.logical_or, bool_result=True, commutative=True, associative=True
)
land = BinaryOp(
    "land", _bool2(np.logical_and), ufunc=np.logical_and, bool_result=True, commutative=True, associative=True
)
lxor = BinaryOp(
    "lxor", _bool2(np.logical_xor), ufunc=np.logical_xor, bool_result=True, commutative=True, associative=True
)

eq = BinaryOp("eq", np.equal, ufunc=np.equal, bool_result=True, commutative=True)
ne = BinaryOp("ne", np.not_equal, ufunc=np.not_equal, bool_result=True, commutative=True)
gt = BinaryOp("gt", np.greater, bool_result=True)
lt = BinaryOp("lt", np.less, bool_result=True)
ge = BinaryOp("ge", np.greater_equal, bool_result=True)
le = BinaryOp("le", np.less_equal, bool_result=True)

BINARY_OPS = {
    op.name: op
    for op in (
        plus,
        minus,
        times,
        div,
        min,
        max,
        first,
        second,
        pair,
        any_,
        lor,
        land,
        lxor,
        eq,
        ne,
        gt,
        lt,
        ge,
        le,
    )
}


# --------------------------------------------------------------------------
# Index-unary (select) ops
# --------------------------------------------------------------------------

valueeq = IndexUnaryOp("valueeq", lambda v, r, c, k: v == k)
valuene = IndexUnaryOp("valuene", lambda v, r, c, k: v != k)
valuegt = IndexUnaryOp("valuegt", lambda v, r, c, k: v > k)
valuege = IndexUnaryOp("valuege", lambda v, r, c, k: v >= k)
valuelt = IndexUnaryOp("valuelt", lambda v, r, c, k: v < k)
valuele = IndexUnaryOp("valuele", lambda v, r, c, k: v <= k)
rowindex_le = IndexUnaryOp("rowindex_le", lambda v, r, c, k: r <= k)
colindex_le = IndexUnaryOp("colindex_le", lambda v, r, c, k: c <= k)
tril = IndexUnaryOp("tril", lambda v, r, c, k: c <= r + (0 if k is None else k))
triu = IndexUnaryOp("triu", lambda v, r, c, k: c >= r + (0 if k is None else k))
diag = IndexUnaryOp("diag", lambda v, r, c, k: c == r + (0 if k is None else k))
offdiag = IndexUnaryOp("offdiag", lambda v, r, c, k: c != r + (0 if k is None else k))

SELECT_OPS = {
    op.name: op
    for op in (
        valueeq,
        valuene,
        valuegt,
        valuege,
        valuelt,
        valuele,
        rowindex_le,
        colindex_le,
        tril,
        triu,
        diag,
        offdiag,
    )
}


# --------------------------------------------------------------------------
# Positional apply ops (GrB_apply with a value-producing IndexUnaryOp)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexApplyOp:
    """Positional apply ``z = f(value, row, col, thunk)`` producing values.

    The value-typed sibling of :class:`IndexUnaryOp`: where the latter is a
    *predicate* (select keeps/drops entries), this produces the new stored
    value.  Covers the ``GrB_ROWINDEX``/``GrB_COLINDEX``/``GrB_DIAGINDEX``
    family used with ``GrB_apply``; for vectors the col array is zeros.
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray, np.ndarray, object], np.ndarray]

    def __call__(self, values, rows, cols, thunk) -> np.ndarray:
        return np.asarray(self.fn(values, rows, cols, thunk))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IndexApplyOp({self.name})"


rowindex = IndexApplyOp("rowindex", lambda v, r, c, k: r + (0 if k is None else k))
colindex = IndexApplyOp("colindex", lambda v, r, c, k: c + (0 if k is None else k))
diagindex = IndexApplyOp("diagindex", lambda v, r, c, k: c - r + (0 if k is None else k))

INDEX_APPLY_OPS = {op.name: op for op in (rowindex, colindex, diagindex)}
