"""The GraphBLAS Vector: a typed sparse vector.

Storage is canonical sparse form: a sorted, duplicate-free int64 index array
plus an aligned value array of the vector's type.  All Table-I operations the
paper uses are methods here: ``vxm``, ``eWiseAdd``/``eWiseMult``, ``apply``,
``select``, ``extract``, ``assign``, ``reduce``, ``build``/``extractTuples``.

Every computational method accepts the standard GraphBLAS modifiers::

    w = u.ewise_add(v, binary.plus, out=w, mask=m, accum=binary.plus, desc=desc)

``out=None`` allocates a fresh result; with ``out`` given, the two-phase
masked/accumulated write of the spec is applied against its current content.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.graphblas import ops as _ops
from repro.graphblas import types as _types
from repro.graphblas._kernels.coo import (
    canonicalize_vector,
    in1d_sorted,
    segment_reduce,
)
from repro.graphblas._kernels.merge import (
    intersect_merge,
    union_merge,
    write_mask_accum,
)
from repro.graphblas._kernels.spmv import mxv as _mxv_kernel
from repro.graphblas.descriptor import NULL as _NULL_DESC
from repro.graphblas.mask import mask_true_keys, resolve_mask
from repro.util.validation import (
    DimensionMismatch,
    ReproError,
    check_in_range,
    check_index_array,
    check_positive,
)

__all__ = ["Vector"]


class Vector:
    """Sparse vector of a fixed GraphBLAS type."""

    __slots__ = ("dtype", "_size", "_indices", "_values")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def __init__(self, dtype, size: int):
        self.dtype = _types.lookup(dtype)
        self._size = check_positive(size, "size")
        self._indices = np.zeros(0, dtype=np.int64)
        self._values = np.zeros(0, dtype=self.dtype.np_dtype)

    @classmethod
    def sparse(cls, dtype, size: int) -> "Vector":
        """Empty vector (GrB_Vector_new)."""
        return cls(dtype, size)

    @classmethod
    def from_coo(cls, indices, values, size: int, dtype=None, dup_op=None) -> "Vector":
        """Build from (index, value) pairs (GrB_Vector_build).

        ``values`` may be a scalar, broadcast to every index.  Duplicated
        indices require ``dup_op``.
        """
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if np.isscalar(values) or getattr(values, "ndim", 1) == 0:
            values = np.full(indices.shape, values)
        else:
            values = np.asarray(values)
        if dtype is None:
            dtype = _types.from_numpy(values.dtype)
        v = cls(dtype, size)
        check_index_array(indices, size, "indices")
        idx, vals = canonicalize_vector(indices, values, size, dup_op=dup_op)
        v._set(idx, v.dtype.cast(vals))
        return v

    @classmethod
    def from_dense(cls, array, dtype=None) -> "Vector":
        """Full vector from a dense array: every position becomes an entry."""
        arr = np.asarray(array)
        if dtype is None:
            dtype = _types.from_numpy(arr.dtype)
        v = cls(dtype, arr.size)
        v._set(np.arange(arr.size, dtype=np.int64), v.dtype.cast(arr).copy())
        return v

    @classmethod
    def full(cls, dtype, size: int, fill) -> "Vector":
        """Full vector with a constant value at every position."""
        dtype = _types.lookup(dtype)
        v = cls(dtype, size)
        v._set(
            np.arange(size, dtype=np.int64),
            np.full(size, fill, dtype=dtype.np_dtype),
        )
        return v

    @classmethod
    def iota(cls, size: int, dtype=_types.INT64) -> "Vector":
        """The ramp vector [0, 1, ..., size-1] (FastSV's initial parents)."""
        dtype = _types.lookup(dtype)
        v = cls(dtype, size)
        v._set(
            np.arange(size, dtype=np.int64),
            np.arange(size, dtype=dtype.np_dtype),
        )
        return v

    def _set(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Install canonical arrays (internal)."""
        self._indices = indices
        self._values = values

    # ------------------------------------------------------------------
    # basic properties / element access
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    @property
    def nvals(self) -> int:
        return int(self._indices.size)

    def __len__(self) -> int:
        return self._size

    def get(self, i: int, default=None):
        """Stored value at position ``i`` or ``default``."""
        i = check_in_range(i, self._size, "index")
        pos = np.searchsorted(self._indices, i)
        if pos < self._indices.size and self._indices[pos] == i:
            return self._values[pos][()]
        return default

    def __getitem__(self, i: int):
        val = self.get(i)
        if val is None:
            raise KeyError(f"no entry at position {i}")
        return val

    def __setitem__(self, i: int, value) -> None:
        """GrB_Vector_setElement."""
        i = check_in_range(i, self._size, "index")
        pos = int(np.searchsorted(self._indices, i))
        cast = self.dtype.np_dtype.type(value)
        if pos < self._indices.size and self._indices[pos] == i:
            self._values = self._values.copy()
            self._values[pos] = cast
        else:
            self._indices = np.insert(self._indices, pos, i)
            self._values = np.insert(self._values, pos, cast)

    def remove_element(self, i: int) -> None:
        """GrB_Vector_removeElement."""
        i = check_in_range(i, self._size, "index")
        pos = np.searchsorted(self._indices, i)
        if pos < self._indices.size and self._indices[pos] == i:
            self._indices = np.delete(self._indices, pos)
            self._values = np.delete(self._values, pos)

    def remove_coo(self, indices) -> "Vector":
        """Batch element removal: drop any stored entry at ``indices``.

        Positions with no stored entry are ignored (idempotent), matching a
        batched ``GrB_Vector_removeElement``.  Mutates and returns ``self``.
        """
        indices = check_index_array(indices, self._size, "indices")
        if indices.size == 0 or self.nvals == 0:
            return self
        keep = ~np.isin(self._indices, indices)
        self._set(self._indices[keep], self._values[keep])
        return self

    def __contains__(self, i: int) -> bool:
        return self.get(i) is not None

    def items(self) -> Iterator[tuple[int, object]]:
        for i, v in zip(self._indices.tolist(), self._values.tolist()):
            yield i, v

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------

    def to_coo(self) -> tuple[np.ndarray, np.ndarray]:
        """GrB_Vector_extractTuples."""
        return self._indices.copy(), self._values.copy()

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full(self._size, fill, dtype=self.dtype.np_dtype)
        out[self._indices] = self._values
        return out

    def dup(self, dtype=None) -> "Vector":
        """Deep copy, optionally retyped."""
        dtype = self.dtype if dtype is None else _types.lookup(dtype)
        v = Vector(dtype, self._size)
        v._set(self._indices.copy(), dtype.cast(self._values).copy())
        return v

    def clear(self) -> None:
        self._set(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=self.dtype.np_dtype)
        )

    def resize(self, size: int) -> None:
        """GrB_Vector_resize: grow or shrink; shrinking drops entries."""
        size = check_positive(size, "size")
        if size < self._size:
            keep = self._indices < size
            self._set(self._indices[keep], self._values[keep])
        self._size = size

    # ------------------------------------------------------------------
    # the write phase shared by all operations
    # ------------------------------------------------------------------

    def _finalize(self, t_idx, t_vals, out, mask, accum, desc, result_dtype):
        desc = desc or _NULL_DESC
        if out is None:
            out = Vector(result_dtype, self._size)
        if out.size != self._size:
            raise DimensionMismatch(
                f"out has size {out.size}, expected {self._size}"
            )
        minfo = resolve_mask(mask, desc)
        mask_keys = None
        comp = False
        if minfo is not None:
            parent, comp, struct = minfo
            if not isinstance(parent, Vector) or parent.size != out.size:
                raise DimensionMismatch("mask must be a Vector of matching size")
            mask_keys = mask_true_keys(parent, struct)
        keys, vals = write_mask_accum(
            out._indices,
            out._values,
            t_idx,
            t_vals,
            mask_keys=mask_keys,
            mask_complement=comp,
            replace=desc.replace,
            accum=accum,
        )
        out._set(keys, out.dtype.cast(vals))
        return out

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def ewise_add(self, other: "Vector", op, *, out=None, mask=None, accum=None, desc=None) -> "Vector":
        """Set-union elementwise combine (GrB_eWiseAdd)."""
        self._check_same_size(other)
        t_idx, t_vals = union_merge(
            self._indices, self._values, other._indices, other._values, op
        )
        return self._finalize(
            t_idx, t_vals, out, mask, accum, desc, self._result_dtype(op, other)
        )

    def ewise_mult(self, other: "Vector", op, *, out=None, mask=None, accum=None, desc=None) -> "Vector":
        """Set-intersection elementwise combine (GrB_eWiseMult)."""
        self._check_same_size(other)
        t_idx, t_vals = intersect_merge(
            self._indices, self._values, other._indices, other._values, op
        )
        return self._finalize(
            t_idx, t_vals, out, mask, accum, desc, self._result_dtype(op, other)
        )

    def apply(self, op, *, out=None, mask=None, accum=None, desc=None, dtype=None) -> "Vector":
        """Elementwise unary map over stored values (GrB_apply)."""
        vals = np.asarray(op(self._values))
        if dtype is None:
            dtype = _types.BOOL if op.bool_result else self.dtype
        else:
            dtype = _types.lookup(dtype)
        return self._finalize(self._indices.copy(), vals, out, mask, accum, desc, dtype)

    def select(self, op, thunk=None, *, out=None, mask=None, accum=None, desc=None) -> "Vector":
        """Keep entries passing an index-unary predicate (GxB_select)."""
        keep = op(self._values, self._indices, np.zeros_like(self._indices), thunk)
        return self._finalize(
            self._indices[keep], self._values[keep], out, mask, accum, desc, self.dtype
        )

    def apply_index(self, op, thunk=None, *, out=None, mask=None, accum=None, desc=None, dtype=None) -> "Vector":
        """Positional apply (GrB_apply with a value-producing IndexUnaryOp).

        The col argument of the op is passed as zeros, matching the C API's
        treatment of vectors in ``GrB_Vector_apply_IndexOp``.
        """
        vals = op(self._values, self._indices, np.zeros_like(self._indices), thunk)
        if dtype is None:
            dtype = _types.from_numpy(vals.dtype)
        else:
            dtype = _types.lookup(dtype)
        return self._finalize(self._indices.copy(), vals, out, mask, accum, desc, dtype)

    def reduce(self, monoid, *, dtype=None):
        """Reduce all stored values to a scalar (GrB_reduce).

        ``dtype`` selects the typed monoid (cast first, then reduce), e.g.
        counting the True entries of a BOOL vector with ``plus`` at INT64.
        """
        rdtype = self.dtype if dtype is None else _types.lookup(dtype)
        return monoid.reduce_array(rdtype.cast(self._values), rdtype)

    def vxm(self, matrix, semiring, *, out=None, mask=None, accum=None, desc=None) -> "Vector":
        """Row-vector times matrix: ``w' = u' ⊕.⊗ A`` (GrB_vxm).

        Implemented as ``mxv`` on the (cached) transpose, with the multiply's
        operand order restored via :func:`semiring.swapped` because the
        semantic order is ``u(i) ⊗ A(i, j)``.
        """
        from repro.graphblas import semiring as _semiring_mod

        desc = desc or _NULL_DESC
        # u' A == (A')u ; honour the INP1 transpose flag.
        mat = matrix if desc.transpose_b else matrix.T
        # The kernel computes mult(A_val, u_val); vxm semantics need
        # mult(u_val, A_val), so swap the multiply.
        t_idx, t_vals = _mxv_kernel(
            mat._coo_tuple(),
            (self._indices, self._values, self._size),
            _semiring_mod.swapped(semiring),
        )
        res = Vector(semiring.output_dtype(self.dtype, matrix.dtype), mat.nrows)
        res._set(t_idx, res.dtype.cast(t_vals))
        return res._finalize(t_idx, res._values, out, mask, accum, desc, res.dtype)

    def extract(self, indices, *, out=None, mask=None, accum=None, desc=None) -> "Vector":
        """``w = u(I)`` (GrB_extract); duplicates in I are allowed."""
        idx = check_index_array(indices, self._size, "indices")
        dense = np.zeros(self._size, dtype=self._values.dtype)
        present = np.zeros(self._size, dtype=np.bool_)
        dense[self._indices] = self._values
        present[self._indices] = True
        hit = present[idx]
        t_idx = np.flatnonzero(hit).astype(np.int64)
        t_vals = dense[idx[hit]]
        res = Vector(self.dtype, idx.size)
        return res._finalize(t_idx, t_vals, out, mask, accum, desc, self.dtype)

    def assign(self, u, indices=None, *, out=None, mask=None, accum=None, desc=None) -> "Vector":
        """``w(I)<mask> accum= u`` (GrB_assign).

        ``u`` may be a Vector over the index space ``I`` or a scalar
        (broadcast to every position of ``I``).  ``indices=None`` means
        GrB_ALL.  Duplicate indices in ``I`` are combined with ``accum`` when
        given (well-defined scatter-accumulate; the C spec leaves this
        undefined, we tighten it).  The mask is over the *full* vector, as in
        GrB_Vector_assign.  Mutates and returns ``self``.
        """
        desc = desc or _NULL_DESC
        if indices is None:
            idx = np.arange(self._size, dtype=np.int64)
        else:
            idx = check_index_array(indices, self._size, "indices")

        if isinstance(u, Vector):
            if u.size != idx.size:
                raise DimensionMismatch(
                    f"assign: u has size {u.size}, I has {idx.size} indices"
                )
            t_idx_global = idx[u._indices]
            t_vals = u._values
        else:  # scalar broadcast
            t_idx_global = idx
            t_vals = np.full(idx.size, u, dtype=self.dtype.np_dtype)

        dup = accum if accum is not None else _ops.second
        t_idx_global, t_vals = canonicalize_vector(
            t_idx_global, t_vals, self._size, dup_op=dup
        )

        if accum is None:
            # Pattern of C inside I is replaced by T's pattern.
            in_i = np.zeros(self._size, dtype=np.bool_)
            in_i[idx] = True
            keep = ~in_i[self._indices]
            base_idx = self._indices[keep]
            base_vals = self._values[keep]
            merged_idx = np.concatenate([base_idx, t_idx_global])
            merged_vals = np.concatenate(
                [base_vals, self.dtype.cast(t_vals)]
            )
            order = np.argsort(merged_idx, kind="stable")
            z_idx, z_vals = merged_idx[order], merged_vals[order]
        else:
            z_idx, z_vals = union_merge(
                self._indices, self._values, t_idx_global, self.dtype.cast(t_vals), accum
            )

        # Mask/replace phase over the full vector.
        minfo = resolve_mask(mask, desc)
        if minfo is None:
            self._set(z_idx, self.dtype.cast(z_vals))
            return self
        parent, comp, struct = minfo
        if not isinstance(parent, Vector) or parent.size != self._size:
            raise DimensionMismatch("assign mask must be a Vector of matching size")
        mask_keys = mask_true_keys(parent, struct)
        keys, vals = write_mask_accum(
            self._indices,
            self._values,
            z_idx,
            z_vals,
            mask_keys=mask_keys,
            mask_complement=comp,
            replace=desc.replace,
            accum=None,
        )
        self._set(keys, self.dtype.cast(vals))
        return self

    def scatter_min(self, indices: np.ndarray, values: np.ndarray) -> "Vector":
        """In-place ``w[I] = min(w[I], vals)`` with duplicate-friendly scatter.

        FastSV's hooking step (``f[f[u]] = min(f[f[u]], mngp[u])``) needs a
        scatter-combine where the same target index appears many times.  This
        is ``np.minimum.at`` on the dense view -- only valid for *full*
        vectors, which parent vectors in FastSV always are.
        """
        if self.nvals != self._size:
            raise ReproError("scatter_min requires a full vector")
        dense = self.to_dense()
        np.minimum.at(dense, np.asarray(indices, dtype=np.int64), values)
        self._set(self._indices, dense.astype(self.dtype.np_dtype, copy=False))
        return self

    # ------------------------------------------------------------------
    # comparison / repr
    # ------------------------------------------------------------------

    def isequal(self, other: "Vector") -> bool:
        """Same size, same structure, same values (dtype-insensitive compare)."""
        return (
            isinstance(other, Vector)
            and self._size == other._size
            and np.array_equal(self._indices, other._indices)
            and np.array_equal(self._values, other._values)
        )

    def _check_same_size(self, other: "Vector") -> None:
        if not isinstance(other, Vector):
            raise TypeError(f"expected Vector, got {type(other)}")
        if other.size != self._size:
            raise DimensionMismatch(
                f"vector sizes differ: {self._size} vs {other.size}"
            )

    def _result_dtype(self, op, other: "Vector"):
        if op.bool_result:
            return _types.BOOL
        if op.name == "first":
            return self.dtype
        if op.name == "second":
            return other.dtype
        if op.name == "pair":
            return _types.INT64
        return _types.promote(self.dtype, other.dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head = ", ".join(
            f"{i}:{v}" for i, v in list(self.items())[:6]
        )
        more = ", ..." if self.nvals > 6 else ""
        return f"Vector<{self.dtype.name}, size={self._size}, nvals={self.nvals}>[{head}{more}]"
