"""Block (tiled) matrix operations: concat, split, stacking, diag.

Mirrors the SuiteSparse extensions ``GxB_Matrix_concat`` / ``GxB_Matrix_split``
and the ``GrB_Matrix_diag`` constructor.  These are pure index arithmetic on
canonical COO -- each tile's triples are offset into (or out of) the composite
index space and re-merged, so concat is O(sum nnz log) and split is O(nnz).
"""

from __future__ import annotations

import numpy as np

from repro.graphblas import types as _types
from repro.graphblas._kernels.coo import canonicalize_matrix
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch, ReproError

__all__ = ["concat", "split", "hstack", "vstack", "diag"]


def concat(tiles: list, dtype=None) -> Matrix:
    """Assemble a matrix from a 2-D grid of tiles (GxB_Matrix_concat).

    ``tiles`` is a list of rows, each a list of Matrix tiles.  Tiles in one
    grid row must agree on ``nrows``; tiles in one grid column must agree on
    ``ncols``.  The result dtype is the promotion over all tiles unless given.
    """
    if not tiles or not all(isinstance(row, (list, tuple)) and row for row in tiles):
        raise ReproError("concat requires a non-empty 2-D grid of tiles")
    width = len(tiles[0])
    if any(len(row) != width for row in tiles):
        raise ReproError("concat grid is ragged")

    row_heights = [row[0].nrows for row in tiles]
    col_widths = [t.ncols for t in tiles[0]]
    for gi, row in enumerate(tiles):
        for gj, tile in enumerate(row):
            if not isinstance(tile, Matrix):
                raise TypeError(f"tile ({gi},{gj}) is {type(tile)}, expected Matrix")
            if tile.nrows != row_heights[gi] or tile.ncols != col_widths[gj]:
                raise DimensionMismatch(
                    f"tile ({gi},{gj}) has shape {tile.shape}, expected "
                    f"({row_heights[gi]}, {col_widths[gj]})"
                )
    row_off = np.concatenate([[0], np.cumsum(row_heights)])
    col_off = np.concatenate([[0], np.cumsum(col_widths)])
    nrows, ncols = int(row_off[-1]), int(col_off[-1])

    if dtype is None:
        dt = tiles[0][0].dtype
        for row in tiles:
            for tile in row:
                dt = _types.promote(dt, tile.dtype)
        dtype = dt
    else:
        dtype = _types.lookup(dtype)

    parts_r, parts_c, parts_v = [], [], []
    for gi, row in enumerate(tiles):
        for gj, tile in enumerate(row):
            r, c, v = tile.to_coo()
            parts_r.append(r + row_off[gi])
            parts_c.append(c + col_off[gj])
            parts_v.append(dtype.cast(v))
    rows = np.concatenate(parts_r) if parts_r else np.zeros(0, np.int64)
    cols = np.concatenate(parts_c) if parts_c else np.zeros(0, np.int64)
    vals = np.concatenate(parts_v) if parts_v else np.zeros(0, dtype.np_dtype)

    out = Matrix(dtype, nrows, ncols)
    r, c, v = canonicalize_matrix(rows, cols, vals, nrows, ncols, dup_op=None)
    out._set(r, c, dtype.cast(v))
    return out


def split(a: Matrix, row_sizes, col_sizes) -> list:
    """Partition a matrix into a grid of tiles (GxB_Matrix_split).

    ``row_sizes``/``col_sizes`` must sum to the matrix dimensions.  Returns a
    list-of-lists with the same layout :func:`concat` accepts, so
    ``concat(split(A, rs, cs))`` is the identity.
    """
    row_sizes = [int(s) for s in row_sizes]
    col_sizes = [int(s) for s in col_sizes]
    if sum(row_sizes) != a.nrows or sum(col_sizes) != a.ncols:
        raise DimensionMismatch(
            f"split sizes {row_sizes} x {col_sizes} do not tile shape {a.shape}"
        )
    if any(s <= 0 for s in row_sizes + col_sizes):
        raise ReproError("split sizes must be positive")
    row_off = np.concatenate([[0], np.cumsum(row_sizes)])
    col_off = np.concatenate([[0], np.cumsum(col_sizes)])

    rows, cols, vals = a.to_coo()
    gi = np.searchsorted(row_off, rows, side="right") - 1
    gj = np.searchsorted(col_off, cols, side="right") - 1

    grid = []
    for i, rh in enumerate(row_sizes):
        grid_row = []
        for j, cw in enumerate(col_sizes):
            inside = (gi == i) & (gj == j)
            tile = Matrix(a.dtype, rh, cw)
            # Entries keep their row-major order under a fixed tile, so the
            # sliced triples are already canonical.
            tile._set(
                rows[inside] - row_off[i],
                cols[inside] - col_off[j],
                vals[inside].copy(),
            )
            grid_row.append(tile)
        grid.append(grid_row)
    return grid


def hstack(matrices: list, dtype=None) -> Matrix:
    """Concatenate matrices left-to-right (single-row :func:`concat`)."""
    return concat([list(matrices)], dtype=dtype)


def vstack(matrices: list, dtype=None) -> Matrix:
    """Concatenate matrices top-to-bottom (single-column :func:`concat`)."""
    return concat([[m] for m in matrices], dtype=dtype)


def diag(v: Vector, k: int = 0) -> Matrix:
    """Square matrix with ``v`` on diagonal ``k`` (GrB_Matrix_diag)."""
    n = v.size + abs(k)
    idx, vals = v.to_coo()
    if k >= 0:
        rows, cols = idx, idx + k
    else:
        rows, cols = idx - k, idx
    out = Matrix(v.dtype, n, n)
    out._set(rows.astype(np.int64), cols.astype(np.int64), vals.copy())
    return out
