"""Incrementally-maintained connected components (edge insertions).

The paper's future-work item (2) proposes replacing the per-update FastSV
re-run inside Q2 with an incremental connected-components algorithm in the
spirit of Ediger et al., *Tracking structure of streaming social networks*
(IPDPS 2011).  For an insert-only stream -- exactly the TTC 2018 workload --
components only ever merge, so a union-find with size tracking maintains the
structure in near-O(α(n)) per inserted edge and O(1) per score read.

:class:`IncrementalCC` additionally maintains the *sum of squared component
sizes* online, which is precisely Q2's score function: when components of
sizes ``a`` and ``b`` merge the score changes by ``(a+b)² - a² - b²``.
The extended query variant in :mod:`repro.queries.q2` keeps one instance per
comment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IncrementalCC"]


class IncrementalCC:
    """Dynamic connected components over a growing vertex/edge set.

    Vertices are arbitrary hashable ids (the case study uses global user
    ids); they are added lazily on first touch so a per-comment instance only
    pays for the users actually liking that comment.
    """

    __slots__ = ("_parent", "_size", "_sum_sq")

    def __init__(self) -> None:
        self._parent: dict = {}
        self._size: dict = {}
        self._sum_sq: int = 0

    @classmethod
    def from_labels(cls, labels: np.ndarray) -> "IncrementalCC":
        """Flat forest from a canonical labelling (label = min member id).

        The vectorised bulk constructor: given FastSV-style labels over
        vertices ``0..n-1`` (each vertex labelled with the smallest vertex
        id in its component, so every label is self-parented by
        construction), builds the equivalent union-find in O(n) NumPy +
        dict work instead of replaying edges one by one.
        """
        labels = np.asarray(labels)
        uniq, counts = np.unique(labels, return_counts=True)
        cc = cls()
        cc._parent = dict(enumerate(labels.tolist()))
        cc._size = dict(zip(uniq.tolist(), counts.tolist()))
        cc._sum_sq = int(np.sum(counts * counts))
        return cc

    # ------------------------------------------------------------------

    def add_vertex(self, v) -> None:
        """Insert an isolated vertex (no-op if already present)."""
        if v not in self._parent:
            self._parent[v] = v
            self._size[v] = 1
            self._sum_sq += 1

    def _find(self, v):
        parent = self._parent
        root = v
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    def add_edge(self, u, v) -> bool:
        """Insert an edge; returns True when two components merged."""
        self.add_vertex(u)
        self.add_vertex(v)
        ru, rv = self._find(u), self._find(v)
        if ru == rv:
            return False
        su, sv = self._size[ru], self._size[rv]
        if su < sv:
            ru, rv = rv, ru
            su, sv = sv, su
        self._parent[rv] = ru
        self._size[ru] = su + sv
        del self._size[rv]
        self._sum_sq += (su + sv) ** 2 - su**2 - sv**2
        return True

    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._parent)

    @property
    def num_components(self) -> int:
        return len(self._size)

    @property
    def sum_squared_sizes(self) -> int:
        """Q2's score: ``Σ size²`` over current components, maintained O(1)."""
        return self._sum_sq

    def component_of(self, v):
        """Representative of v's component (v must be present)."""
        return self._find(v)

    def same_component(self, u, v) -> bool:
        if u not in self._parent or v not in self._parent:
            return False
        return self._find(u) == self._find(v)

    def sizes(self) -> list[int]:
        """Current component sizes (unordered)."""
        return list(self._size.values())

    def labels(self, vertices) -> np.ndarray:
        """Label array aligned with ``vertices`` (roots as labels)."""
        return np.asarray([self._find(v) for v in vertices])
