"""Local clustering coefficient, the LAGraph way.

``lcc(v) = 2 * tri(v) / (deg(v) * (deg(v) - 1))`` for undirected graphs.
Per-vertex triangle counts come from the masked SpGEMM ``C<A> = A +.& A``
(wedges that close) reduced row-wise -- the same trick as global triangle
counting, kept per row instead of summed.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import FP64, INT64
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch

__all__ = ["local_clustering_coefficient", "triangles_per_vertex"]


def triangles_per_vertex(adjacency: Matrix) -> Vector:
    """Number of triangles through each vertex (undirected, symmetric A)."""
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    plus_pair = _semiring.get("plus_pair")
    one = adjacency.apply(_ops.one, dtype=INT64)
    closed = one.mxm(one, plus_pair, mask=one)
    tri2 = closed.reduce_vector(_monoid.plus_monoid, dtype=INT64)
    # Each triangle through v is counted twice (once per incident wedge
    # direction), so halve.
    idx, vals = tri2.to_coo()
    return Vector.from_coo(idx, vals // 2, n, dtype=INT64)


def local_clustering_coefficient(adjacency: Matrix) -> Vector:
    """LCC per vertex; vertices of degree < 2 get coefficient 0 (full vector)."""
    n = adjacency.nrows
    tri = triangles_per_vertex(adjacency)
    deg = adjacency.reduce_vector(
        _monoid.plus_monoid, dtype=INT64
    )
    out = np.zeros(n, dtype=np.float64)
    d_idx, d_vals = deg.to_coo()
    t_idx, t_vals = tri.to_coo()
    tri_dense = np.zeros(n, dtype=np.float64)
    tri_dense[t_idx] = t_vals
    d = d_vals.astype(np.float64)
    ok = d >= 2
    out[d_idx[ok]] = 2.0 * tri_dense[d_idx[ok]] / (d[ok] * (d[ok] - 1.0))
    return Vector.from_coo(np.arange(n, dtype=np.int64), out, n, dtype=FP64)
