"""PageRank via repeated vxm on the plus_times semiring (LAGraph staple)."""

from __future__ import annotations

import numpy as np

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.graphblas.types import FP64
from repro.util.validation import DimensionMismatch

__all__ = ["pagerank"]


def pagerank(
    adjacency: Matrix,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 100,
) -> Vector:
    """PageRank scores of a directed graph.

    Dangling vertices (zero out-degree) redistribute their mass uniformly, so
    scores always sum to 1 (standard teleporting random-surfer model).
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    if n == 0:
        return Vector.sparse(FP64, 0)

    out_deg = adjacency.reduce_vector(_monoid.plus_monoid, dtype=FP64)
    deg_dense = out_deg.to_dense()
    dangling = deg_dense == 0

    rank = np.full(n, 1.0 / n)
    plus_times = _semiring.get("plus_times")
    inv_deg = np.where(dangling, 0.0, 1.0 / np.maximum(deg_dense, 1e-300))

    for _ in range(max_iter):
        # weight each vertex's rank by 1/outdegree, push along edges
        w = Vector.from_dense(rank * inv_deg)
        pushed = w.vxm(adjacency.dup(FP64), plus_times).to_dense()
        dangling_mass = float(rank[dangling].sum())
        new_rank = (1.0 - damping) / n + damping * (pushed + dangling_mass / n)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return Vector.from_dense(rank)
