"""Triangle counting: the masked-SpGEMM showcase (Cohen's algorithm).

``#triangles = Σ (L ⊕.⊗ L') inside the mask L`` where ``L`` is the strictly
lower-triangular part of the symmetric adjacency matrix.  Exercises select
(tril), masked mxm and full reduction in one line of algebra.
"""

from __future__ import annotations

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.mask import Mask
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import INT64
from repro.util.validation import DimensionMismatch

__all__ = ["triangle_count"]


def triangle_count(adjacency: Matrix) -> int:
    """Number of triangles in an undirected (symmetric) graph."""
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    # strictly lower triangle, as 0/1 INT64
    low = adjacency.select(_ops.tril, -1).apply(_ops.one, dtype=INT64)
    # C<L> = L · L'   counts, per edge (i,j), the common neighbours k<j<i
    c = low.mxm(
        low,
        _semiring.get("plus_times"),
        mask=Mask(low, structure=True),
        desc=Descriptor(transpose_b=True, replace=True),
    )
    return int(c.reduce_scalar(_monoid.plus_monoid))
