"""k-truss: the maximal subgraph where every edge closes >= k-2 triangles.

LAGraph's formulation: the *support* of edge (u, v) is the number of common
neighbours of u and v, computed for all edges at once with the masked SpGEMM
``S<A> = A +.& A``.  Edges with support < k-2 are dropped and the support is
recomputed until a fixed point -- each round is one SpGEMM plus one select.
"""

from __future__ import annotations

from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.matrix import Matrix
from repro.util.validation import DimensionMismatch, ReproError

__all__ = ["ktruss"]


def ktruss(adjacency: Matrix, k: int, *, max_iter: int | None = None) -> Matrix:
    """The k-truss of an undirected graph, as its (symmetric) adjacency.

    Entry values of the result are edge supports (common-neighbour counts)
    within the truss, matching LAGraph_KTruss.  ``k >= 3``.
    """
    if k < 3:
        raise ReproError(f"k-truss needs k >= 3, got {k}")
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    plus_pair = _semiring.get("plus_pair")

    current = adjacency
    rounds = 0
    while True:
        # Support per edge; edges with zero common neighbours get *no* entry
        # (the structural product is empty there), so they are dropped by the
        # nvals comparison below just like sub-threshold ones.
        support = current.mxm(current, plus_pair, mask=current)
        trussy = support.select(_ops.valuege, k - 2)
        if trussy.nvals == current.nvals:
            return trussy
        current = trussy  # values are supports (>= 1), truthy as a value mask
        rounds += 1
        if max_iter is not None and rounds >= max_iter:
            return trussy
