"""k-core decomposition by vectorised peeling.

The coreness of a vertex is the largest k such that it belongs to a subgraph
where every vertex has degree >= k.  The classic algorithm repeatedly peels
all vertices of minimum remaining degree; here each peel round is a batch
degree update computed with ``np.bincount`` over the edges incident to the
peeled set, so the total work is O(m + n log n)-ish with no per-vertex
Python iteration.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas.matrix import Matrix
from repro.graphblas.types import INT64
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch

__all__ = ["kcore_decompose", "kcore_subgraph"]


def kcore_decompose(adjacency: Matrix) -> Vector:
    """Coreness of every vertex (full vector; isolated vertices get 0).

    ``adjacency`` must be symmetric (undirected graph) and is treated
    structurally; self-loops are ignored.
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    rows, cols, _ = adjacency.to_coo()
    off = rows != cols
    rows, cols = rows[off], cols[off]

    degree = np.bincount(rows, minlength=n).astype(np.int64)
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=np.bool_)
    edge_alive = np.ones(rows.size, dtype=np.bool_)
    k = 0
    remaining = n
    while remaining:
        k = max(k, int(degree[alive].min()))
        # Peel every vertex whose remaining degree is <= k, cascading.
        while True:
            peel = alive & (degree <= k)
            if not peel.any():
                break
            core[peel] = k
            alive &= ~peel
            remaining -= int(peel.sum())
            # Remove edges incident to peeled vertices; decrement the
            # surviving endpoint's degree once per removed edge.
            doomed = edge_alive & (peel[rows] | peel[cols])
            if doomed.any():
                dst_alive = doomed & alive[cols]
                degree -= np.bincount(cols[dst_alive], minlength=n)
                edge_alive &= ~doomed
            if remaining == 0:
                break
    # Full vector: zero coreness is a value, not an absent entry.
    return Vector.from_coo(np.arange(n, dtype=np.int64), core, n, dtype=INT64)


def kcore_subgraph(adjacency: Matrix, k: int) -> tuple[Matrix, np.ndarray]:
    """The k-core subgraph: (induced adjacency, vertex ids kept)."""
    core = kcore_decompose(adjacency)
    _, coreness = core.to_coo()
    keep = np.flatnonzero(coreness >= k).astype(np.int64)
    if keep.size == 0:
        return Matrix.sparse(adjacency.dtype, 1, 1), keep
    return adjacency.extract(keep, keep), keep
