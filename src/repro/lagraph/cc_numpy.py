"""Union-find connected components on raw edge lists.

A path-halving, union-by-index union-find.  This serves three roles:

* oracle for FastSV in the test-suite;
* the fast path for Q2's many *tiny* induced subgraphs, where FastSV's
  vector-at-a-time constant factors dominate (see
  ``benchmarks/bench_ablation_inc_cc.py``);
* the building block of :class:`repro.lagraph.incremental_cc.IncrementalCC`.

The loop is per-edge Python, but Q2's subgraphs have a handful of edges each;
for large graphs use :func:`repro.lagraph.fastsv.fastsv`, which is fully
vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["connected_components_numpy", "component_sizes", "sum_squared_component_sizes"]


def connected_components_numpy(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Component labels (smallest member id) for an n-vertex edge list."""
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    for a, b in zip(src.tolist(), dst.tolist()):
        ra, rb = find(a), find(b)
        if ra != rb:
            if ra < rb:
                parent[rb] = ra
            else:
                parent[ra] = rb

    # Flatten: every vertex points at its root; roots are component minima
    # because unions always keep the smaller id as root.
    out = np.empty(n, dtype=np.int64)
    for v in range(n):
        out[v] = find(v)
    return out


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Sizes of the components named by a label vector."""
    if labels.size == 0:
        return labels.copy()
    _, counts = np.unique(labels, return_counts=True)
    return counts


def sum_squared_component_sizes(labels: np.ndarray) -> int:
    """The Q2 score kernel: ``Σ_i size(component_i)²``."""
    counts = component_sizes(labels)
    return int(np.sum(counts.astype(np.int64) ** 2))
