"""Community detection by label propagation (CDLP).

The LDBC Graphalytics formulation: every vertex starts with its own id as
label; each round every vertex adopts the *most frequent* label among its
neighbours, breaking ties toward the smallest label.  The mode-of-neighbour-
labels step has no semiring, so (exactly like LAGraph's implementation) it
drops to a sort: gather each edge's target label, lexsort by (vertex, label),
and run-length count -- all O(m log m) NumPy, no Python loops.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas.matrix import Matrix
from repro.graphblas.types import INT64
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch

__all__ = ["cdlp"]


def _mode_per_segment(seg: np.ndarray, labels: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Most frequent label per segment id, ties to the smallest label.

    ``seg`` (segment owner per element) and ``labels`` are parallel arrays.
    Returns (segment ids present, winning label per segment).
    """
    if seg.size == 0:
        return seg, labels
    order = np.lexsort((labels, seg))
    s, l = seg[order], labels[order]
    # Run-length encode (segment, label) pairs.
    new_pair = np.empty(s.size, dtype=np.bool_)
    new_pair[0] = True
    new_pair[1:] = (s[1:] != s[:-1]) | (l[1:] != l[:-1])
    starts = np.flatnonzero(new_pair)
    counts = np.diff(np.append(starts, s.size))
    pair_seg = s[starts]
    pair_label = l[starts]
    # Within one segment the pairs are label-ascending, so a *stable* argsort
    # on -counts would pick the smallest label among maxima; np.maximum.reduceat
    # per segment is cheaper: find segment boundaries among pairs.
    seg_start = np.empty(pair_seg.size, dtype=np.bool_)
    seg_start[0] = True
    seg_start[1:] = pair_seg[1:] != pair_seg[:-1]
    seg_first = np.flatnonzero(seg_start)
    max_count = np.maximum.reduceat(counts, seg_first)
    # Broadcast each segment's max back over its pairs.
    seg_id_of_pair = np.cumsum(seg_start) - 1
    is_winner = counts == max_count[seg_id_of_pair]
    # First winning pair per segment == smallest label among maxima.
    winner_pos = np.flatnonzero(is_winner)
    first_winner = winner_pos[np.searchsorted(seg_id_of_pair[winner_pos], np.arange(seg_first.size))]
    return pair_seg[seg_first], pair_label[first_winner]


def cdlp(adjacency: Matrix, *, max_iter: int = 10) -> Vector:
    """Label per vertex after ``max_iter`` synchronous propagation rounds.

    ``adjacency`` is treated structurally (values ignored); for undirected
    graphs pass a symmetric matrix.  Isolated vertices keep their own id.
    Always returns a *full* vector.
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    rows, cols, _ = adjacency.to_coo()
    labels = np.arange(n, dtype=np.int64)
    for _ in range(max_iter):
        seg_ids, winners = _mode_per_segment(rows, labels[cols], n)
        new_labels = labels.copy()
        new_labels[seg_ids] = winners
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return Vector.from_coo(np.arange(n, dtype=np.int64), labels, n, dtype=INT64)
