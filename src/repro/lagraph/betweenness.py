"""Betweenness centrality (Brandes) as batched linear algebra.

The LAGraph batch formulation: a forward BFS sweep accumulates per-level
shortest-path counts (``plus_first`` semiring over the frontier), then a
backward sweep pushes dependency fractions down the BFS DAG.  Running one
source at a time keeps the memory footprint at O(n * depth) and matches
LAGraph_VertexCentrality_Betweenness's structure; the ``sources`` argument
batches a subset for the usual sampled approximation.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.mask import Mask
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import FP64
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch, check_in_range

__all__ = ["betweenness_centrality"]


def _forward_sweep(adjacency: Matrix, source: int) -> list[Vector]:
    """BFS levels carrying shortest-path counts; returns one sigma per level."""
    n = adjacency.nrows
    plus_first = _semiring.get("plus_first")
    frontier = Vector.from_coo([source], [1.0], n, dtype=FP64)
    visited = Vector.from_coo([source], [1.0], n, dtype=FP64)
    sigmas = [frontier]
    while True:
        frontier = frontier.vxm(
            adjacency,
            plus_first,
            mask=Mask(visited, complement=True, structure=True),
            desc=Descriptor(replace=True),
        )
        if frontier.nvals == 0:
            return sigmas
        visited = visited.ewise_add(frontier, _ops.first)
        sigmas.append(frontier)


def betweenness_centrality(
    adjacency: Matrix, sources=None, *, normalized: bool = False
) -> Vector:
    """Betweenness score per vertex (full FP64 vector).

    ``sources=None`` runs the exact algorithm over all vertices; a list of
    source ids computes the standard sampled estimate.  ``normalized``
    divides by ``(n-1)(n-2)`` (directed-graph convention, matching
    networkx's default for DiGraphs).
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    if sources is None:
        sources = range(n)
    plus_second = _semiring.get("plus_second")
    centrality = np.zeros(n, dtype=np.float64)

    for s in sources:
        check_in_range(int(s), n, "source")
        sigmas = _forward_sweep(adjacency, int(s))
        # Backward sweep: delta(v) = sum over successors w of
        # sigma(v)/sigma(w) * (1 + delta(w)).
        delta = np.zeros(n, dtype=np.float64)
        sigma_dense = [lv.to_dense(fill=0.0) for lv in sigmas]
        for depth in range(len(sigmas) - 1, 0, -1):
            w_idx, _ = sigmas[depth].to_coo()
            coef = np.zeros(n, dtype=np.float64)
            coef[w_idx] = (1.0 + delta[w_idx]) / sigma_dense[depth][w_idx]
            coef_vec = Vector.from_coo(w_idx, coef[w_idx], n, dtype=FP64)
            # Push one level up along incoming edges: A * coef restricted to
            # the previous frontier.
            contrib = adjacency.mxv(
                coef_vec,
                plus_second,
                mask=Mask(sigmas[depth - 1], structure=True),
                desc=Descriptor(replace=True),
            )
            c_idx, c_vals = contrib.to_coo()
            delta[c_idx] += c_vals * sigma_dense[depth - 1][c_idx]
        delta[int(s)] = 0.0
        centrality += delta

    if normalized and n > 2:
        centrality /= (n - 1) * (n - 2)
    return Vector.from_coo(np.arange(n, dtype=np.int64), centrality, n, dtype=FP64)
