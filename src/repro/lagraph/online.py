"""Uniform online entry points for the LAGraph algorithm layer.

The algorithms in this package were written for one-shot evaluation:
``pagerank(A)``, ``cdlp(A)``, ``triangle_count(A)`` each take a frozen
adjacency matrix and return a result.  Serving them (see
:mod:`repro.analytics`) needs two more things per algorithm:

* a **uniform batch entry point** -- every algorithm reduced to the same
  shape, ``compute(adjacency) -> dense per-vertex array`` (scores for
  vertex rankings, component/community labels for partition rankings), so
  one engine can drive any of them; and
* an optional **incremental maintainer** -- an ``on_delta``-capable state
  object for the algorithms whose structure admits true incremental
  maintenance (connected components via union-find in the Ediger et al.
  streaming style the paper's future-work item (2) cites; degree by
  frontier counting).  Algorithms without one (PageRank, CDLP, triangles,
  LCC, k-core) are served under a dirty-threshold recompute policy by the
  layer above.

Everything here stays in index space -- plain edge arrays, no
``repro.model`` import -- so the layering (graphblas < lagraph < model)
is preserved; :mod:`repro.analytics` binds these entry points to
:class:`~repro.model.graph.SocialGraph` views and
:class:`~repro.model.graph.GraphDelta` updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.graphblas import monoid as _monoid
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import INT64
from repro.lagraph.cdlp import cdlp
from repro.lagraph.fastsv import fastsv
from repro.lagraph.incremental_cc import IncrementalCC
from repro.lagraph.kcore import kcore_decompose
from repro.lagraph.lcc import local_clustering_coefficient, triangles_per_vertex
from repro.lagraph.pagerank import pagerank

__all__ = [
    "OnlineAlgorithm",
    "ONLINE_ALGORITHMS",
    "ComponentsMaintainer",
    "DegreeMaintainer",
]


# ---------------------------------------------------------------------------
# incremental maintainers
# ---------------------------------------------------------------------------


class ComponentsMaintainer:
    """Connected components maintained per inserted edge (Ediger-style).

    Wraps :class:`~repro.lagraph.incremental_cc.IncrementalCC` (union-find
    with size tracking) and additionally tracks the *minimum vertex index
    per component*, so :meth:`labels` reproduces FastSV's canonical
    labelling -- smallest vertex id in the component -- bit for bit, and
    :meth:`top_components` ranks components without an O(n) relabel scan.

    ``on_delta`` handles vertex additions and edge insertions in
    near-O(α(n)) each.  Edge *removals* can split a component, which
    union-find cannot express; ``on_delta`` then returns ``False`` and the
    caller rebuilds via :meth:`rebuild` (the engine layer's documented
    escape hatch -- results stay exact either way).
    """

    __slots__ = ("_cc", "_min_member", "_n")

    def __init__(self) -> None:
        self._cc = IncrementalCC()
        self._min_member: dict = {}
        self._n = 0

    def rebuild(self, adjacency: Matrix) -> None:
        """Re-seed from a frozen symmetric adjacency matrix (n vertices).

        Vectorised: one FastSV run yields the canonical labels, and the
        union-find forest is reconstructed *flat* from them (parent =
        component minimum) -- O(n + m) NumPy work instead of replaying
        every edge through the Python union-find loop.  This is the
        removal-batch escape hatch, so it sits on the serving apply path.
        """
        labels = fastsv(adjacency).to_dense()
        self._cc = IncrementalCC.from_labels(labels)
        # a canonical label IS its component's minimum member
        self._min_member = {r: r for r in np.unique(labels).tolist()}
        self._n = labels.size

    def on_delta(self, n_after: int, added, removed) -> bool:
        """Apply one batch of vertex growth + edge changes; False = rebuild me."""
        if removed[0].size:
            return False
        for v in range(self._n, n_after):
            self._cc.add_vertex(v)
            self._min_member[v] = v
        self._n = n_after
        cc, find, mins = self._cc, self._cc._find, self._min_member
        for a, b in zip(added[0].tolist(), added[1].tolist()):
            ra, rb = find(a), find(b)
            if ra == rb:
                continue
            cc.add_edge(a, b)
            winner = find(a)
            loser = rb if winner == ra else ra
            if mins[loser] < mins[winner]:
                mins[winner] = mins[loser]
            del mins[loser]
        return True

    def labels(self) -> np.ndarray:
        """Canonical labels, identical to ``fastsv(adjacency).to_dense()``."""
        n = self._n
        out = np.empty(n, dtype=np.int64)
        find, mins = self._cc._find, self._min_member
        for v in range(n):
            out[v] = mins[find(v)]
        return out

    def top_components(self, k: int) -> list[tuple[int, int]]:
        """Largest-k components as (min vertex index, size) pairs.

        Ordered by size descending, ties toward the smaller minimum
        member.  O(#components) per call -- no per-vertex scan.
        """
        find, sizes = self._cc._find, self._cc._size
        entries = sorted(
            ((-size, self._min_member[root]) for root, size in sizes.items())
        )[:k]
        return [(rep, -neg) for neg, rep in entries]

    @property
    def num_components(self) -> int:
        return self._cc.num_components


class DegreeMaintainer:
    """Friend-count per vertex under inserts *and* removals, O(Δ) per batch."""

    __slots__ = ("_degree",)

    def __init__(self) -> None:
        self._degree = np.zeros(0, dtype=np.int64)

    def rebuild(self, adjacency: Matrix) -> None:
        rows, _, _ = adjacency.to_coo()
        self._degree = np.bincount(rows, minlength=adjacency.nrows).astype(np.int64)

    def on_delta(self, n_after: int, added, removed) -> bool:
        deg = self._degree
        if n_after > deg.size:
            grown = np.zeros(n_after, dtype=np.int64)
            grown[: deg.size] = deg
            self._degree = deg = grown
        for ends in added:
            np.add.at(deg, ends, 1)
        for ends in removed:
            np.subtract.at(deg, ends, 1)
        return True

    def scores(self) -> np.ndarray:
        return self._degree


# ---------------------------------------------------------------------------
# the uniform registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OnlineAlgorithm:
    """One algorithm reduced to the serving shape.

    ``kind`` decides how the dense result array is ranked by the engine
    layer: ``"vertex"`` arrays are per-vertex scores (top-k vertices),
    ``"partition"`` arrays are per-vertex component/community labels
    (top-k partitions by size, represented by their minimum member).
    ``make_maintainer`` is ``None`` for algorithms that only admit the
    dirty-threshold recompute policy.
    """

    name: str
    kind: str  # "vertex" | "partition"
    compute: Callable[[Matrix], np.ndarray]
    default_policy: str  # "incremental" | "dirty"
    make_maintainer: Optional[Callable[[], object]] = None
    doc: str = ""


def _compute_components(adjacency: Matrix) -> np.ndarray:
    return fastsv(adjacency).to_dense()


def _compute_degree(adjacency: Matrix) -> np.ndarray:
    return adjacency.reduce_vector(_monoid.plus_monoid, dtype=INT64).to_dense()


def _compute_pagerank(adjacency: Matrix) -> np.ndarray:
    return pagerank(adjacency).to_dense()


def _compute_cdlp(adjacency: Matrix) -> np.ndarray:
    return cdlp(adjacency).to_dense()


def _compute_triangles(adjacency: Matrix) -> np.ndarray:
    return triangles_per_vertex(adjacency).to_dense()


def _compute_lcc(adjacency: Matrix) -> np.ndarray:
    return local_clustering_coefficient(adjacency).to_dense()


def _compute_kcore(adjacency: Matrix) -> np.ndarray:
    return kcore_decompose(adjacency).to_dense()


#: every algorithm the analytics layer can serve, keyed by tool name
ONLINE_ALGORITHMS: dict[str, OnlineAlgorithm] = {
    a.name: a
    for a in (
        OnlineAlgorithm(
            "components",
            "partition",
            _compute_components,
            "incremental",
            ComponentsMaintainer,
            doc="largest connected components (FastSV labels / union-find)",
        ),
        OnlineAlgorithm(
            "degree",
            "vertex",
            _compute_degree,
            "incremental",
            DegreeMaintainer,
            doc="highest-degree vertices (frontier-counted)",
        ),
        OnlineAlgorithm(
            "pagerank",
            "vertex",
            _compute_pagerank,
            "dirty",
            doc="PageRank influence ranking",
        ),
        OnlineAlgorithm(
            "cdlp",
            "partition",
            _compute_cdlp,
            "dirty",
            doc="largest communities by label propagation",
        ),
        OnlineAlgorithm(
            "triangles",
            "vertex",
            _compute_triangles,
            "dirty",
            doc="vertices on the most triangles (masked SpGEMM)",
        ),
        OnlineAlgorithm(
            "lcc",
            "vertex",
            _compute_lcc,
            "dirty",
            doc="highest local clustering coefficient",
        ),
        OnlineAlgorithm(
            "kcore",
            "vertex",
            _compute_kcore,
            "dirty",
            doc="highest coreness (k-core peeling)",
        ),
    )
}
