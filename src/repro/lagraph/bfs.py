"""Breadth-first search in the language of linear algebra.

Classic GraphBLAS push BFS: the frontier is a sparse vector, each level is
one ``vxm`` on a structural semiring, and visited vertices are masked out
with a complemented mask -- the canonical demonstration of why masks exist.
"""

from __future__ import annotations

from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.mask import Mask
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.graphblas.types import INT64
from repro.util.validation import DimensionMismatch, check_in_range

__all__ = ["bfs_levels", "bfs_parents"]


def bfs_levels(adjacency: Matrix, source: int) -> Vector:
    """Level (hop distance) of every reachable vertex; source has level 0."""
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    check_in_range(source, n, "source")

    levels = Vector.sparse(INT64, n)
    frontier = Vector.from_coo([source], [True], n, dtype="BOOL")
    lor_land = _semiring.get("lor_land")
    depth = 0
    while frontier.nvals:
        levels.assign(depth, indices=frontier.to_coo()[0])
        # next frontier: reachable in one hop, not yet visited
        frontier = frontier.vxm(
            adjacency,
            lor_land,
            mask=Mask(levels, complement=True, structure=True),
            desc=Descriptor(replace=True),
        )
        depth += 1
    return levels


def bfs_parents(adjacency: Matrix, source: int) -> Vector:
    """BFS tree: parent id per reachable vertex (source is its own parent).

    Uses the min-first semiring so each discovered vertex records the
    smallest-id parent in the previous frontier, making output deterministic.
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch("adjacency must be square")
    check_in_range(source, n, "source")

    parents = Vector.sparse(INT64, n)
    parents[source] = source
    # frontier carries the *id* of the frontier vertex as its value
    frontier = Vector.from_coo([source], [source], n, dtype=INT64)
    min_first = _semiring.get("min_first")
    while frontier.nvals:
        nxt = frontier.vxm(
            adjacency,
            min_first,
            mask=Mask(parents, complement=True, structure=True),
            desc=Descriptor(replace=True),
        )
        if nxt.nvals == 0:
            break
        idx, vals = nxt.to_coo()
        # merge the new discoveries into parents (GrB_assign with no accum
        # would *replace* the whole vector and unmask visited vertices)
        parents.assign(Vector.from_coo(idx, vals, n, dtype=INT64), accum=_ops.second)
        # re-seed the frontier with the newly discovered vertex ids
        frontier = Vector.from_coo(idx, idx, n, dtype=INT64)
    return parents
