"""LAGraph-style graph algorithms built on the GraphBLAS substrate.

This package stands in for the LAGraph library [Mattson et al., GrAPL 2019]
the paper links against.  The case study needs exactly one algorithm --
connected components via FastSV [Zhang, Azad, Hu, PP 2020] -- but a graph
algorithm library with a single entry would be a poor library, so the usual
LAGraph staples are included and tested: BFS, PageRank and triangle counting.

:mod:`repro.lagraph.incremental_cc` implements the paper's future-work item
(2): maintaining connected components incrementally instead of re-running
FastSV per affected comment (Ediger et al., IPDPS 2011 style).

:mod:`repro.lagraph.online` reduces the servable algorithms to uniform
entry points -- one ``compute(adjacency)`` shape each, plus ``on_delta``
incremental maintainers where the structure allows -- the registry
:mod:`repro.analytics` serves through
:class:`~repro.serving.service.GraphService`.
"""

from repro.lagraph.fastsv import fastsv
from repro.lagraph.cc_numpy import connected_components_numpy, component_sizes
from repro.lagraph.incremental_cc import IncrementalCC
from repro.lagraph.bfs import bfs_levels, bfs_parents
from repro.lagraph.pagerank import pagerank
from repro.lagraph.triangles import triangle_count
from repro.lagraph.sssp import sssp_bellman_ford
from repro.lagraph.cdlp import cdlp
from repro.lagraph.kcore import kcore_decompose, kcore_subgraph
from repro.lagraph.lcc import local_clustering_coefficient, triangles_per_vertex
from repro.lagraph.betweenness import betweenness_centrality
from repro.lagraph.ktruss import ktruss
from repro.lagraph.msf import minimum_spanning_forest
from repro.lagraph.online import ONLINE_ALGORITHMS, OnlineAlgorithm
from repro.lagraph.scc import scc

__all__ = [
    "ONLINE_ALGORITHMS",
    "OnlineAlgorithm",
    "fastsv",
    "connected_components_numpy",
    "component_sizes",
    "IncrementalCC",
    "bfs_levels",
    "bfs_parents",
    "pagerank",
    "triangle_count",
    "sssp_bellman_ford",
    "cdlp",
    "kcore_decompose",
    "kcore_subgraph",
    "local_clustering_coefficient",
    "triangles_per_vertex",
    "betweenness_centrality",
    "ktruss",
    "scc",
    "minimum_spanning_forest",
]
