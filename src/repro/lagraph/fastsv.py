"""FastSV connected components (Zhang, Azad & Hu, SIAM PP 2020).

FastSV is a Shiloach-Vishkin-family label-propagation algorithm expressed in
GraphBLAS primitives, which is why LAGraph (and the paper's Q2 step 3) uses
it.  Each iteration runs three relaxations on the parent vector ``f``:

1. *stochastic hooking*:  ``f[f[u]] = min(f[f[u]], mngp[u])``
2. *aggressive hooking*:  ``f[u]    = min(f[u],    mngp[u])``
3. *shortcutting*:        ``f[u]    = min(f[u],    gp[u])``

where ``gp = f[f]`` are grandparents and ``mngp = min.second(A, gp)`` is the
minimum grandparent among each vertex's neighbours (one ``mxv`` on the
min-second semiring).  Convergence: ``gp`` stops changing; the result assigns
every vertex the smallest vertex id in its component, so labels are
deterministic and comparable across implementations.
"""

from __future__ import annotations

import numpy as np

from repro.graphblas import semiring as _semiring
from repro.graphblas.matrix import Matrix
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch

__all__ = ["fastsv"]


def fastsv(adjacency: Matrix, max_iter: int | None = None) -> Vector:
    """Connected components of an undirected graph.

    Parameters
    ----------
    adjacency:
        Symmetric boolean adjacency matrix (the Friends matrix in the case
        study).  Symmetry is assumed, not checked (check is O(nnz) and the
        model layer guarantees it).
    max_iter:
        Safety bound on iterations; default ``2 * ceil(log2(n)) + 8`` which
        FastSV provably never exceeds.

    Returns
    -------
    Vector (INT64) of length n: ``f[v]`` = smallest vertex id in v's component.
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch(f"adjacency must be square, got {adjacency.shape}")
    f = Vector.iota(n)
    if n == 0 or adjacency.nvals == 0:
        return f
    if max_iter is None:
        max_iter = 2 * int(np.ceil(np.log2(max(n, 2)))) + 8

    fd = f.to_dense()
    min_second = _semiring.get("min_second")
    for _ in range(max_iter):
        # grandparents: gp[u] = f[f[u]]  (GrB_extract with index vector f)
        gp = fd[fd]
        gp_vec = Vector.from_dense(gp)
        # mngp[u] = min over neighbours w of gp[w]  (mxv, min.second semiring)
        mngp = adjacency.mxv(gp_vec, min_second)
        m_idx, m_vals = mngp.to_coo()

        # (1) stochastic hooking: parents adopt the smaller grandparent label.
        #     Scatter-min: duplicate targets are frequent, resolved by min.
        np.minimum.at(fd, fd[m_idx], m_vals)
        # (2) aggressive hooking onto the vertex itself.
        np.minimum.at(fd, m_idx, m_vals)
        # (3) shortcutting: jump to grandparent.
        np.minimum(fd, gp, out=fd)

        new_gp = fd[fd]
        if np.array_equal(new_gp, gp):
            break
        # pointer-jump until the tree is flat enough for the next round
        fd = new_gp
    else:  # pragma: no cover - max_iter is a proven bound
        pass

    # Final full shortcut so every vertex points at its component minimum.
    while True:
        nxt = fd[fd]
        if np.array_equal(nxt, fd):
            break
        fd = nxt
    return Vector.from_dense(fd)
