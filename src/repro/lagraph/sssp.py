"""Single-source shortest paths on the min-plus (tropical) semiring.

Bellman-Ford expressed as repeated ``w = min(w, w min.+ A)`` -- the textbook
example of why GraphBLAS is parameterised over semirings.  Each relaxation
round is one ``vxm``; convergence is detected structurally (no distance
changed), giving early exit after ``diameter + 1`` rounds on non-negative
weights and after at most ``n`` rounds in general, with negative-cycle
detection if the n-th round still relaxes.
"""

from __future__ import annotations

from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import FP64
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch, ReproError, check_in_range

__all__ = ["sssp_bellman_ford"]


def sssp_bellman_ford(weights: Matrix, source: int, *, max_iter: int | None = None) -> Vector:
    """Distances from ``source``; unreachable vertices have no entry.

    ``weights`` is a square matrix whose stored entry ``(i, j)`` is the
    length of edge i->j (explicit zeros are legal zero-length edges).
    Negative weights are allowed; a negative cycle reachable from the source
    raises :class:`ReproError`.
    """
    n = weights.nrows
    if weights.ncols != n:
        raise DimensionMismatch("weights must be square")
    check_in_range(source, n, "source")
    min_plus = _semiring.get("min_plus")
    rounds = n if max_iter is None else max_iter

    dist = Vector.from_coo([source], [0.0], n, dtype=FP64)
    for _ in range(rounds):
        relaxed = dist.vxm(weights, min_plus)
        new = dist.ewise_add(relaxed, _ops.min)
        if new.isequal(dist):
            return dist
        dist = new
    # One extra probe: if relaxation still improves, a negative cycle exists.
    probe = dist.ewise_add(dist.vxm(weights, min_plus), _ops.min)
    if not probe.isequal(dist):
        if max_iter is None:
            raise ReproError("negative cycle reachable from source")
    return dist
