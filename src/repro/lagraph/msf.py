"""Minimum spanning forest, LAGraph-style (Borůvka in linear algebra).

Borůvka's algorithm is the classical GraphBLAS MSF formulation: every
round, each component finds its cheapest outgoing edge with one ``mxv`` on
the **min-second-style tuple semiring** (minimum by weight, carrying the
edge identity along), the chosen edges are added to the forest, and the
components are contracted by connected components over the chosen edges.
The number of components at least halves per round, so there are at most
``log2(n)`` rounds.

To keep ties deterministic across runs and implementations, edge selection
minimises the tuple ``(weight, source id, target id)``; the resulting
forest is unique whenever edge weights are distinct and reproducible even
when they are not.

Complexity: O(m log n) with fully vectorised rounds (the per-round work is
one weighted reduction over the remaining edges plus one union-find pass).
"""

from __future__ import annotations

import numpy as np

from repro.graphblas.matrix import Matrix
from repro.lagraph.cc_numpy import connected_components_numpy
from repro.util.validation import DimensionMismatch

__all__ = ["minimum_spanning_forest"]


def minimum_spanning_forest(adjacency: Matrix) -> list[tuple[int, int, float]]:
    """MSF edges of an undirected weighted graph.

    Parameters
    ----------
    adjacency:
        Symmetric weighted adjacency matrix; ``A[i, j]`` is the weight of
        the undirected edge i -- j (both triangles must be present, as the
        model layer and :func:`repro.graphblas.io` produce).

    Returns
    -------
    Sorted list of ``(u, v, weight)`` with ``u < v``: the forest edges
    (spanning tree per connected component).
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch(f"adjacency must be square, got {adjacency.shape}")
    rows, cols, weights = adjacency.to_coo()
    # one canonical record per undirected edge
    keep = rows < cols
    src = rows[keep]
    dst = cols[keep]
    w = np.asarray(weights[keep], dtype=np.float64)
    forest: list[tuple[int, int, float]] = []
    if n == 0 or src.size == 0:
        return forest

    labels = np.arange(n, dtype=np.int64)
    chosen_src = np.zeros(0, dtype=np.int64)
    chosen_dst = np.zeros(0, dtype=np.int64)

    while True:
        # drop intra-component edges
        alive = labels[src] != labels[dst]
        src, dst, w = src[alive], dst[alive], w[alive]
        if src.size == 0:
            break
        # per-component cheapest outgoing edge: lexsort by (component,
        # weight, src, dst) and take each component's first record, once
        # for each endpoint's component
        pick: dict[int, int] = {}
        for ends in (labels[src], labels[dst]):
            order = np.lexsort((dst, src, w, ends))
            comps = ends[order]
            first = np.ones(comps.size, dtype=bool)
            first[1:] = comps[1:] != comps[:-1]
            for e, comp in zip(order[first].tolist(), comps[first].tolist()):
                best = pick.get(comp)
                if best is None or (w[e], src[e], dst[e]) < (w[best], src[best], dst[best]):
                    pick[comp] = e
        edges = sorted(set(pick.values()))
        for e in edges:
            forest.append((int(src[e]), int(dst[e]), float(w[e])))
        # contract: relabel via CC over all chosen edges so far
        chosen_src = np.concatenate([chosen_src, src[edges]])
        chosen_dst = np.concatenate([chosen_dst, dst[edges]])
        labels = connected_components_numpy(n, chosen_src, chosen_dst)

    return sorted(forest)
