"""Strongly connected components, LAGraph-style (forward-backward).

The FW-BW algorithm expressed in GraphBLAS primitives: pick the smallest
unassigned vertex as pivot, BFS its forward closure on ``A`` and backward
closure on ``A``:sup:`T` (two ``vxm`` loops on the lor-land semiring with a
complemented structural mask), and intersect them -- the intersection is the
pivot's SCC (Fleischer/Hendrickson/Pinar style, with the trim-free worklist
specialisation that repeatedly peels the pivot component).

Labels are deterministic: every vertex receives the smallest vertex id of
its SCC, matching the convention of :func:`repro.lagraph.fastsv.fastsv` so
the two are interchangeable downstream (on a symmetric matrix they return
identical vectors -- a property test asserts this).

Worst case is O(n·(n+m)) when the graph is a long chain of singleton SCCs;
on social-network-shaped inputs with a giant component the pivot peels most
of the graph in the first round.
"""

from __future__ import annotations

from repro.graphblas import monoid as _monoid
from repro.graphblas import ops as _ops
from repro.graphblas import semiring as _semiring
from repro.graphblas.descriptor import Descriptor
from repro.graphblas.mask import Mask
from repro.graphblas.matrix import Matrix
from repro.graphblas.types import BOOL, INT64
from repro.graphblas.vector import Vector
from repro.util.validation import DimensionMismatch

__all__ = ["scc"]


def _closure(adjacency: Matrix, pivot: int, remaining: Vector) -> Vector:
    """Vertices of ``remaining`` reachable from ``pivot`` (BOOL vector).

    One ``vxm`` per BFS level on the lor-land semiring; the complemented
    structural mask prunes revisits and the eWiseMult with ``remaining``
    confines the search to unassigned vertices.
    """
    n = adjacency.nrows
    lor_land = _semiring.get("lor_land")
    visited = Vector.from_coo([pivot], [True], n, dtype=BOOL)
    frontier = visited
    replace = Descriptor(replace=True)
    while frontier.nvals:
        frontier = frontier.vxm(
            adjacency,
            lor_land,
            mask=Mask(visited, complement=True, structure=True),
            desc=replace,
        )
        frontier = frontier.ewise_mult(remaining, _ops.land)
        if frontier.nvals == 0:
            break
        visited = visited.ewise_add(frontier, _ops.lor)
    return visited


def scc(adjacency: Matrix) -> Vector:
    """SCC labels of a directed graph.

    Parameters
    ----------
    adjacency:
        Square boolean adjacency matrix; ``A[i, j]`` nonempty means an edge
        i -> j.

    Returns
    -------
    Vector (INT64) of length n: ``labels[v]`` = smallest vertex id in the
    strongly connected component of v.
    """
    n = adjacency.nrows
    if adjacency.ncols != n:
        raise DimensionMismatch(f"adjacency must be square, got {adjacency.shape}")
    labels = Vector.sparse(INT64, n)
    if n == 0:
        return labels
    transpose = adjacency.transpose()
    remaining = Vector.full(BOOL, n, True)

    while remaining.nvals:
        pivot = int(remaining.to_coo()[0][0])  # smallest unassigned vertex
        forward = _closure(adjacency, pivot, remaining)
        backward = _closure(transpose, pivot, remaining)
        component = forward.ewise_mult(backward, _ops.land)
        idx = component.to_coo()[0]
        labels.assign(pivot, indices=idx)
        remaining.remove_coo(idx)
    return labels
