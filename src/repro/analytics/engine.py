"""AnalyticsEngine: one lagraph algorithm as a served, maintained tool.

One engine = one entry of :data:`~repro.lagraph.online.ONLINE_ALGORITHMS`
bound to the friends relation of a shared
:class:`~repro.model.graph.SocialGraph`, conforming to the
:class:`~repro.queries.engine.EngineBase` protocol the serving layer
drives.  Two maintenance policies:

``incremental``
    The algorithm ships an ``on_delta``-capable maintainer
    (:class:`~repro.lagraph.online.ComponentsMaintainer`,
    :class:`~repro.lagraph.online.DegreeMaintainer`); every refresh folds
    the delta into the maintained state and the served result is always
    exact at the current version.  A delta the maintainer cannot express
    (an edge removal splitting a component) falls back to a rebuild --
    still exact, just not O(Δ) for that one batch.

``dirty``
    No maintainer exists; the engine accumulates the delta's friends-graph
    nnz and recomputes from scratch only once the accumulated total
    crosses ``recompute_threshold x nnz(friends at last compute)``.
    Between recomputes it keeps serving the last committed result;
    :attr:`AnalyticsEngine.staleness` says how many refreshes ago that
    result was computed, and the serving cache stamps it onto reads as
    :attr:`~repro.serving.cache.CachedResult.computed_version`.

A standalone engine works without any service:

>>> from repro.model.graph import SocialGraph
>>> g = SocialGraph()
>>> for uid in (1, 2, 3, 4):
...     _ = g.add_user(uid)
>>> _ = g.add_friendship(1, 2)
>>> eng = make_analytics_engine("components", k=2)
>>> eng.load(g); eng.initial()   # (min member, size) pairs under the hood
'1|3'
>>> eng.last_top                 # the {1,2} component, then singleton {3}
[(1, 2), (3, 1)]
>>> from repro.model.changes import AddFriendship, ChangeSet
>>> eng.update(ChangeSet([AddFriendship(3, 4), AddFriendship(2, 3)]))
'1'
>>> eng.last_top
[(1, 4)]
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphblas.matrix import Matrix
from repro.lagraph.online import ONLINE_ALGORITHMS, OnlineAlgorithm
from repro.model.graph import GraphDelta, SocialGraph
from repro.queries.engine import EngineBase
from repro.util.validation import ReproError

__all__ = [
    "ANALYTICS_NAMES",
    "AnalyticsEngine",
    "friends_view",
    "make_analytics_engine",
]

#: every analytics tool name GraphService accepts, in registry order
ANALYTICS_NAMES = tuple(ONLINE_ALGORITHMS)

#: dirty-threshold default: recompute once the accumulated delta nnz
#: reaches this fraction of the friends matrix at the last compute
DEFAULT_RECOMPUTE_THRESHOLD = 0.1


def friends_view(graph: SocialGraph) -> Matrix:
    """The graph view every analytics tool runs on.

    The symmetric boolean |users| x |users| friends adjacency -- the same
    matrix Q2's component step consumes, served by the storage layer's
    dirty-row freeze so extracting the view after a batch costs O(Δ·deg),
    not a rebuild.  Kept as a function so future tools can register other
    views (the likes bipartite graph, the reply forest) in one place.
    """
    return graph.friends


class AnalyticsEngine(EngineBase):
    """Serves one online algorithm over the friends view of a shared graph."""

    def __init__(
        self,
        name: str,
        *,
        k: int = 3,
        policy: Optional[str] = None,
        recompute_threshold: float = DEFAULT_RECOMPUTE_THRESHOLD,
        partition: Optional[tuple[int, int]] = None,
    ):
        spec = ONLINE_ALGORITHMS.get(name)
        if spec is None:
            raise ReproError(
                f"unknown analytics tool {name!r}; expected one of {ANALYTICS_NAMES}"
            )
        policy = policy or spec.default_policy
        if policy not in ("incremental", "dirty"):
            raise ReproError(f"unknown maintenance policy {policy!r}")
        if policy == "incremental" and spec.make_maintainer is None:
            raise ReproError(
                f"{name!r} has no incremental maintainer; use policy='dirty'"
            )
        if partition is not None:
            index, count = partition
            if not (0 <= index < count):
                raise ReproError(f"bad partition {partition!r}: need 0 <= index < count")
        self.name = name
        self.spec: OnlineAlgorithm = spec
        self.k = k
        self.policy = policy
        self.recompute_threshold = float(recompute_threshold)
        #: (shard_index, shard_count) when served sharded: :meth:`partial`
        #: restricts its report to the users this shard *owns* under
        #: :func:`repro.sharding.partition.shard_of`, so per-shard partials
        #: are disjoint and their merge is exact
        self.partition = partition
        self.graph: Optional[SocialGraph] = None
        self._maintainer = None
        self.last_top: list[tuple] = []
        self._result_string = ""
        #: the dense result array backing the *served* (possibly stale)
        #: result -- what :meth:`partial` reports for dirty-policy engines
        #: (incremental engines read their maintainer's live state instead)
        self._served_dense: Optional[np.ndarray] = None
        #: memoised :meth:`partial` (invalidated per refresh) and the
        #: grow-only ownership mask over the append-only users IdMap --
        #: keeps sharded reads O(1) between batches like unsharded ones
        self._partial_cache: Optional[list] = None
        self._owned_mask = np.zeros(0, dtype=bool)
        #: refreshes seen / refresh count at which last_top was computed --
        #: their difference is the served result's staleness in batches
        self.refreshes = 0
        self.computed_at = 0
        #: accumulated friends-graph delta nnz since the last recompute,
        #: and the nnz(friends) denominator frozen at that recompute
        self._dirty_nnz = 0
        self._nnz_at_compute = 0
        #: lifetime recompute count (initial() included) -- bench accounting
        self.recomputes = 0

    # -- protocol ---------------------------------------------------------

    def load(self, graph: SocialGraph) -> None:
        self.graph = graph
        if self.policy == "incremental":
            self._maintainer = self.spec.make_maintainer()

    def initial(self) -> str:
        self._require_loaded()
        adj = friends_view(self.graph)
        if self._maintainer is not None:
            self._maintainer.rebuild(adj)
        self._recompute(adj)
        self._partial_cache = None
        self.refreshes = 0
        self.computed_at = 0
        return self._result_string

    def refresh(self, delta: GraphDelta) -> str:
        """Maintain the result across one already-applied batch.

        Incremental engines stay exact every batch; dirty engines serve
        the previous result until the accumulated delta crosses the
        recompute threshold.  Either way the returned string is what the
        serving cache stores at the new version.
        """
        self._require_loaded()
        self.refreshes += 1
        if self._maintainer is not None:
            self._refresh_incremental(delta)
        else:
            self._refresh_dirty(delta)
        self._partial_cache = None
        return self._result_string

    def close(self) -> None:
        self._maintainer = None

    # -- policies ---------------------------------------------------------

    @staticmethod
    def _delta_nnz(delta: GraphDelta) -> int:
        """Friends-graph work in one delta: symmetric edge nnz + new rows."""
        return 2 * (
            delta.new_friendships[0].size + delta.removed_friendships[0].size
        ) + delta.new_user_idx.size

    def _refresh_incremental(self, delta: GraphDelta) -> None:
        if self._delta_nnz(delta) == 0:
            # nothing this tool reads changed: keep the published result
            # without re-ranking all n users
            self.computed_at = self.refreshes
            return
        added = delta.new_friendships
        removed = delta.removed_friendships
        if not self._maintainer.on_delta(delta.n_users_after, added, removed):
            # the maintainer cannot express this delta (component split);
            # rebuild from the frozen view -- exact, one-off O(nnz)
            self._maintainer.rebuild(friends_view(self.graph))
        self._publish_from_maintainer()
        self.computed_at = self.refreshes

    def _refresh_dirty(self, delta: GraphDelta) -> None:
        self._dirty_nnz += self._delta_nnz(delta)
        if self._dirty_nnz == 0:
            # nothing this tool reads changed: the served result is still
            # exact at the new version, not stale
            self.computed_at = self.refreshes
            return
        if self._dirty_nnz >= self.recompute_threshold * max(self._nnz_at_compute, 1):
            self._recompute(friends_view(self.graph))
            self.computed_at = self.refreshes

    def _recompute(self, adj: Matrix) -> None:
        """Batch-recompute the served result from the current view."""
        if self._maintainer is not None:
            self._publish_from_maintainer()
        else:
            dense = self.spec.compute(adj)
            self._served_dense = dense
            if self.spec.kind == "partition":
                self.last_top = self._top_partitions(dense)
            else:
                self.last_top = self._top_vertices(dense)
            self._result_string = self.format_top(self.last_top)
        self._dirty_nnz = 0
        self._nnz_at_compute = adj.nvals
        self.recomputes += 1

    # -- ranking ----------------------------------------------------------

    def _publish_from_maintainer(self) -> None:
        m = self._maintainer
        if self.spec.kind == "partition":
            ext = self.graph.users
            self.last_top = [
                (ext.external(rep), size) for rep, size in m.top_components(self.k)
            ]
        else:
            self.last_top = self._top_vertices(m.scores())
        self._result_string = self.format_top(self.last_top)

    def _top_vertices(self, scores: np.ndarray) -> list[tuple]:
        """Top-k users by score descending, external id ascending on ties.

        O(n) per call, not O(n log n): an ``np.partition`` preselect
        narrows to < 2k candidates (everything strictly above the k-th
        score, plus the k smallest external ids among the boundary ties),
        and only that handful is lexsorted -- so the per-refresh ranking
        cost of the incremental engines stays below their O(Δ)-ish
        maintenance, even with millions of users.
        """
        n = scores.size
        if n == 0:
            return []
        k = min(self.k, n)
        ext = self.graph.users.external_array()
        if k < n:
            kth = np.partition(scores, n - k)[n - k]  # k-th largest score
            cand = np.flatnonzero(scores > kth)  # < k entries by definition
            ties = np.flatnonzero(scores == kth)
            if ties.size > k:
                ties = ties[np.argpartition(ext[ties], k - 1)[:k]]
            cand = np.concatenate([cand, ties])
        else:
            cand = np.arange(n)
        order = cand[np.lexsort((ext[cand], -scores[cand]))][:k]
        items = scores[order]
        return [
            (int(ext[i]), s.item())
            for i, s in zip(order.tolist(), items)
        ]

    def _top_partitions(self, labels: np.ndarray) -> list[tuple]:
        """Top-k components/communities by size; rep = minimum member.

        ``labels`` is any per-vertex partition labelling; the partition is
        represented by the *external id of its minimum internal member*
        (for FastSV labels that member is the label itself), scored by
        partition size.  Ties break toward the smaller canonical label
        (minimum internal member) -- the same order the incremental
        components maintainer produces, independent of external-id
        assignment.
        """
        n = labels.size
        if n == 0:
            return []
        uniq, inverse, counts = np.unique(
            labels, return_inverse=True, return_counts=True
        )
        # minimum internal member per partition
        first = np.full(uniq.size, n, dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(n, dtype=np.int64))
        ext = self.graph.users.external_array()
        order = np.lexsort((first, -counts))[: min(self.k, uniq.size)]
        return [(int(ext[first[i]]), int(counts[i])) for i in order.tolist()]

    # -- mergeable-result protocol (sharded serving) -----------------------

    def _served_array(self) -> np.ndarray:
        """The dense per-vertex array behind the currently *served* result."""
        if self._maintainer is not None:
            if self.spec.kind == "partition":
                return self._maintainer.labels()
            return self._maintainer.scores()
        if self._served_dense is None:
            raise ReproError("engine not initialised; call initial() first")
        return self._served_dense

    def partial(self):
        """The shard's mergeable report, restricted to its owned users.

        Requires ``partition=(index, count)``: the friends graph is
        replicated, so every shard's per-vertex result is globally exact,
        and ownership is what makes the partials disjoint.  Vertex
        algorithms report their owned top-k ``(external_id, score)``
        pairs; partition algorithms report ``(label, min_member,
        rep_external_id, owned_count)`` rows whose counts the router sums
        back into exact global sizes (see :mod:`repro.sharding.merge`).
        The array is the *served* one, so a dirty-policy engine's partial
        is exactly as stale as its cached result -- never fresher.
        Memoised per refresh (and the ownership mask is grow-only over the
        append-only users IdMap), so repeated sharded reads between
        batches stay O(1) like unsharded cache hits.
        """
        self._require_loaded()
        if self.partition is None:
            raise ReproError(
                f"analytics engine {self.name!r} has no partition; construct "
                "it with partition=(shard_index, shard_count) to serve shards"
            )
        if self._partial_cache is not None:
            return self._partial_cache
        served = self._served_array()
        m = served.size
        ext = self.graph.users.external_array()[:m]
        owned = self._ownership(ext)[:m]
        self._partial_cache = self._compute_partial(served, ext, owned, m)
        return self._partial_cache

    def _ownership(self, ext: np.ndarray) -> np.ndarray:
        """Grow-only owned-user mask (IdMap indices are append-only)."""
        from repro.sharding.partition import shard_of_array

        index, count = self.partition
        if ext.size > self._owned_mask.size:
            grown = shard_of_array(ext[self._owned_mask.size :], count) == index
            self._owned_mask = np.concatenate([self._owned_mask, grown])
        return self._owned_mask

    def _compute_partial(self, served, ext, owned, m: int):
        if self.spec.kind != "partition":
            idx = np.flatnonzero(owned)
            if idx.size == 0:
                return []
            sub, sube = served[idx], ext[idx]
            order = np.lexsort((sube, -sub))[: min(self.k, idx.size)]
            return [(int(sube[j]), served[idx[j]].item()) for j in order.tolist()]
        uniq, inverse, _ = np.unique(served, return_inverse=True, return_counts=True)
        first = np.full(uniq.size, m, dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(m, dtype=np.int64))
        owned_counts = np.bincount(inverse[owned], minlength=uniq.size)
        return [
            (int(uniq[j]), int(first[j]), int(ext[first[j]]), int(owned_counts[j]))
            for j in np.flatnonzero(owned_counts).tolist()
        ]

    def merge_partials(self, partials, k: int):
        from repro.sharding.merge import merge_partition_partials, merge_vertex_partials

        if self.spec.kind == "partition":
            return merge_partition_partials(partials, k)
        return merge_vertex_partials(partials, k)

    # -- introspection -----------------------------------------------------

    @property
    def staleness(self) -> int:
        """Refreshes since the served result was last exact (0 = fresh)."""
        return self.refreshes - self.computed_at

    def labels(self) -> np.ndarray:
        """Current canonical per-vertex labels (partition algorithms only).

        For ``components`` under the incremental policy this is maintained
        union-find state canonicalised to FastSV's labelling (smallest
        vertex index per component) -- the bit-identity oracle the tests
        pin against ``fastsv(graph.friends)``.
        """
        self._require_loaded()
        if self._maintainer is not None and hasattr(self._maintainer, "labels"):
            return self._maintainer.labels()
        if self.spec.kind != "partition":
            raise ReproError(f"{self.name!r} has no per-vertex labelling")
        return self.spec.compute(friends_view(self.graph))

    def recompute_now(self) -> str:
        """Force an immediate exact recompute (drops any staleness)."""
        self._require_loaded()
        if self._maintainer is not None:
            self._maintainer.rebuild(friends_view(self.graph))
        self._recompute(friends_view(self.graph))
        self._partial_cache = None
        self.computed_at = self.refreshes
        return self._result_string

    def _require_loaded(self) -> None:
        if self.graph is None:
            raise ReproError("engine not loaded; call load(graph) first")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalyticsEngine<{self.name}, policy={self.policy}, "
            f"staleness={self.staleness}>"
        )


def make_analytics_engine(
    name: str,
    *,
    k: int = 3,
    policy: Optional[str] = None,
    recompute_threshold: float = DEFAULT_RECOMPUTE_THRESHOLD,
    partition: Optional[tuple[int, int]] = None,
) -> AnalyticsEngine:
    """Factory mirroring :func:`repro.queries.engine.make_engine`."""
    return AnalyticsEngine(
        name,
        k=k,
        policy=policy,
        recompute_threshold=recompute_threshold,
        partition=partition,
    )
