"""repro.analytics -- online graph-analytics engines over the serving layer.

The paper's algorithm layer (:mod:`repro.lagraph`: FastSV, PageRank, CDLP,
triangles, LCC, k-core, ...) was only reachable offline; this package turns
each algorithm into a long-running, incrementally-maintained serving engine.
An :class:`AnalyticsEngine` speaks the same
:class:`~repro.queries.engine.EngineBase` protocol as the Fig. 5 query
engines (``load`` / ``initial`` / ``refresh(delta)`` / ``last_top`` /
``close``), so :class:`~repro.serving.service.GraphService` registers
analytics tools next to Q1/Q2 and fans every applied batch out to them --
versioned result cache, per-op metrics and WAL/snapshot recovery unchanged.

Maintenance is policy-driven per algorithm (see
:data:`~repro.analytics.engine.ANALYTICS_NAMES` and the matrix in
``DESIGN.md``): truly incremental where the structure allows (connected
components via union-find, degree by frontier counting), dirty-threshold
recompute elsewhere (PageRank, CDLP, triangles, LCC, k-core recompute only
once accumulated delta nnz crosses a configurable fraction of the graph,
serving the last committed result with a staleness tag meanwhile).
Recomputes run through the ordinary kernel layer, so an installed kernel
executor (``REPRO_WORKERS``) parallelises them for free.
"""

from repro.analytics.engine import (
    ANALYTICS_NAMES,
    AnalyticsEngine,
    friends_view,
    make_analytics_engine,
)

__all__ = [
    "AnalyticsEngine",
    "make_analytics_engine",
    "friends_view",
    "ANALYTICS_NAMES",
]
