"""XMI serialisation of the TTC 2018 Social Media models.

The contest distributes its input models as EMF/XMI documents conforming to
the Social Media metamodel, plus one XMI "change model" per update step.
This module reads and writes that representation with the standard-library
``xml.etree`` -- no EMF runtime required -- so the repository can exchange
inputs with the original contest artefacts.

Implemented subset (documented divergences from full EMF XMI):

* References are **id-based** (``submitter="u101"``), not positional EMF
  paths (``//@users.3``): id-based XMI is valid EMF output (``xmi:id``) and
  keeps documents diff-able and order-insensitive.
* Comment containment follows the metamodel: a Post element *contains* its
  direct comments, which contain theirs, so the submission tree is the XML
  tree and ``rootPost``/``parent`` references are implied by nesting.
* ``friends`` and ``likedBy`` are space-separated IDREFS attributes, EMF's
  encoding for multi-valued references.  Friendship is symmetric; both
  directions are written (as EMF does for eOpposite references) and
  deduplicated on load.
* Change models use one element per change with an ``xsi:type`` drawn from
  the contest's change vocabulary (``changes:ElementAdded`` for new nodes,
  ``changes:ReferenceAdded``/``ReferenceRemoved`` for new and removed
  edges -- the removal variants are this repo's insert+removal extension).

Example document::

    <socialmedia:SocialNetworkRoot xmi:version="2.0" xmlns:xmi="..."
                                   xmlns:socialmedia="...">
      <users xmi:id="u101" id="101" name="alice" friends="u102"/>
      <users xmi:id="u102" id="102" name="bob" friends="u101"/>
      <posts xmi:id="p11" id="11" timestamp="10" submitter="u101">
        <comments xmi:id="c21" id="21" timestamp="20" submitter="u102"
                  likedBy="u101 u102"/>
      </posts>
    </socialmedia:SocialNetworkRoot>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.model.graph import SocialGraph
from repro.util.validation import ReproError

__all__ = [
    "save_graph_xmi",
    "load_graph_xmi",
    "save_change_sets_xmi",
    "load_change_sets_xmi",
    "XMI_NS",
    "MODEL_NS",
    "CHANGES_NS",
]

XMI_NS = "http://www.omg.org/XMI"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
MODEL_NS = "https://www.transformation-tool-contest.eu/2018/socialmedia"
CHANGES_NS = "https://www.transformation-tool-contest.eu/2018/changes"

_Q_XMI_ID = f"{{{XMI_NS}}}id"
_Q_XMI_VERSION = f"{{{XMI_NS}}}version"
_Q_XSI_TYPE = f"{{{XSI_NS}}}type"


def _register_namespaces() -> None:
    ET.register_namespace("xmi", XMI_NS)
    ET.register_namespace("xsi", XSI_NS)
    ET.register_namespace("socialmedia", MODEL_NS)
    ET.register_namespace("changes", CHANGES_NS)


def _uid(ext_id: int) -> str:
    return f"u{ext_id}"


def _pid(ext_id: int) -> str:
    return f"p{ext_id}"


def _cid(ext_id: int) -> str:
    return f"c{ext_id}"


# ---------------------------------------------------------------------------
# graph -> XMI
# ---------------------------------------------------------------------------


def save_graph_xmi(path, graph: SocialGraph) -> None:
    """Write the graph as one XMI document at ``path``."""
    _register_namespaces()
    root = ET.Element(f"{{{MODEL_NS}}}SocialNetworkRoot", {_Q_XMI_VERSION: "2.0"})

    friends_of: dict[int, list[int]] = {}
    for a, b in sorted(graph._friend_keys):
        friends_of.setdefault(a, []).append(b)
        friends_of.setdefault(b, []).append(a)
    likers_of: dict[int, list[int]] = {}
    for c, u in sorted(graph._like_keys):
        likers_of.setdefault(c, []).append(u)

    for idx in range(graph.num_users):
        ext = graph.users.external(idx)
        attrs = {
            _Q_XMI_ID: _uid(ext),
            "id": str(ext),
            "name": graph._user_names[idx],
        }
        nbrs = sorted(friends_of.get(idx, ()))
        if nbrs:
            attrs["friends"] = " ".join(_uid(graph.users.external(n)) for n in nbrs)
        ET.SubElement(root, "users", attrs)

    # submission tree: children per (is_post, idx) container
    children: dict[tuple[bool, int], list[int]] = {}
    for idx in range(graph.num_comments):
        children.setdefault(graph._comment_parent[idx], []).append(idx)

    def emit_comments(parent_el: ET.Element, key: tuple[bool, int]) -> None:
        for cidx in children.get(key, ()):  # insertion order == timestamp order
            ext = graph.comments.external(cidx)
            attrs = {
                _Q_XMI_ID: _cid(ext),
                "id": str(ext),
                "timestamp": str(graph._comment_ts[cidx]),
                "submitter": _uid(graph.users.external(graph._comment_author[cidx])),
            }
            likers = sorted(likers_of.get(cidx, ()))
            if likers:
                attrs["likedBy"] = " ".join(
                    _uid(graph.users.external(u)) for u in likers
                )
            el = ET.SubElement(parent_el, "comments", attrs)
            emit_comments(el, (False, cidx))

    for pidx in range(graph.num_posts):
        ext = graph.posts.external(pidx)
        el = ET.SubElement(
            root,
            "posts",
            {
                _Q_XMI_ID: _pid(ext),
                "id": str(ext),
                "timestamp": str(graph._post_ts[pidx]),
                "submitter": _uid(graph.users.external(graph._post_author[pidx])),
            },
        )
        emit_comments(el, (True, pidx))

    tree = ET.ElementTree(root)
    ET.indent(tree)
    tree.write(path, encoding="utf-8", xml_declaration=True)


# ---------------------------------------------------------------------------
# XMI -> graph
# ---------------------------------------------------------------------------


def _require(el: ET.Element, attr: str) -> str:
    value = el.get(attr)
    if value is None:
        raise ReproError(f"XMI element <{el.tag}> missing required @{attr}")
    return value


def _ref_id(ref: str, *, kind: str) -> int:
    """Decode an id-based reference like ``u101`` -> 101."""
    if not ref or ref[0] != kind or not ref[1:].isdigit():
        raise ReproError(f"malformed {kind!r}-reference {ref!r}")
    return int(ref[1:])


def load_graph_xmi(path) -> SocialGraph:
    """Read an XMI document produced by :func:`save_graph_xmi`."""
    tree = ET.parse(path)
    root = tree.getroot()
    if root.tag != f"{{{MODEL_NS}}}SocialNetworkRoot":
        raise ReproError(f"not a SocialNetworkRoot document: {root.tag}")
    g = SocialGraph()

    user_els = root.findall("users")
    for el in user_els:
        g.add_user(int(_require(el, "id")), el.get("name", ""))

    pending_likes: list[tuple[int, int]] = []  # (user ext, comment ext)

    def load_comments(parent_el: ET.Element, parent_ext: int) -> None:
        for el in parent_el.findall("comments"):
            ext = int(_require(el, "id"))
            g.add_comment(
                ext,
                int(_require(el, "timestamp")),
                _ref_id(_require(el, "submitter"), kind="u"),
                parent_ext,
            )
            for ref in el.get("likedBy", "").split():
                pending_likes.append((_ref_id(ref, kind="u"), ext))
            load_comments(el, ext)

    for el in root.findall("posts"):
        ext = int(_require(el, "id"))
        g.add_post(
            ext,
            int(_require(el, "timestamp")),
            _ref_id(_require(el, "submitter"), kind="u"),
        )
        load_comments(el, ext)

    # friendships after all users exist; both directions present, dedup'd
    for el in user_els:
        uid = int(_require(el, "id"))
        for ref in el.get("friends", "").split():
            other = _ref_id(ref, kind="u")
            if uid < other:
                g.add_friendship(uid, other)

    for user_ext, comment_ext in pending_likes:
        g.add_like(user_ext, comment_ext)

    return g


# ---------------------------------------------------------------------------
# change models
# ---------------------------------------------------------------------------

_CHANGE_RENDERERS = {
    AddUser: lambda ch: ("changes:ElementAdded", {
        "element": "User", "id": str(ch.user_id), "name": ch.name,
    }),
    AddPost: lambda ch: ("changes:ElementAdded", {
        "element": "Post", "id": str(ch.post_id),
        "timestamp": str(ch.timestamp), "submitter": _uid(ch.user_id),
    }),
    AddComment: lambda ch: ("changes:ElementAdded", {
        "element": "Comment", "id": str(ch.comment_id),
        "timestamp": str(ch.timestamp), "submitter": _uid(ch.user_id),
        "parent": str(ch.parent_id),
    }),
    AddLike: lambda ch: ("changes:ReferenceAdded", {
        "reference": "likedBy", "user": _uid(ch.user_id),
        "comment": _cid(ch.comment_id),
    }),
    AddFriendship: lambda ch: ("changes:ReferenceAdded", {
        "reference": "friends", "user": _uid(ch.user1_id),
        "friend": _uid(ch.user2_id),
    }),
    RemoveLike: lambda ch: ("changes:ReferenceRemoved", {
        "reference": "likedBy", "user": _uid(ch.user_id),
        "comment": _cid(ch.comment_id),
    }),
    RemoveFriendship: lambda ch: ("changes:ReferenceRemoved", {
        "reference": "friends", "user": _uid(ch.user1_id),
        "friend": _uid(ch.user2_id),
    }),
}


def save_change_sets_xmi(directory, change_sets) -> None:
    """One ``change{NN}.xmi`` document per change set under ``directory``."""
    _register_namespaces()
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    for n, cs in enumerate(change_sets, start=1):
        root = ET.Element(
            f"{{{CHANGES_NS}}}ModelChangeSet", {_Q_XMI_VERSION: "2.0"}
        )
        for ch in cs:
            try:
                xsi_type, attrs = _CHANGE_RENDERERS[type(ch)](ch)
            except KeyError:  # pragma: no cover - defensive
                raise ReproError(f"unknown change type {type(ch).__name__}")
            el = ET.SubElement(root, "changes", {_Q_XSI_TYPE: xsi_type})
            for k, v in attrs.items():
                el.set(k, v)
        tree = ET.ElementTree(root)
        ET.indent(tree)
        tree.write(d / f"change{n:02d}.xmi", encoding="utf-8", xml_declaration=True)


def _parse_change(el: ET.Element, path) -> object:
    xsi_type = el.get(_Q_XSI_TYPE, "")
    reference = el.get("reference", "")
    element = el.get("element", "")
    if xsi_type == "changes:ElementAdded":
        if element == "User":
            return AddUser(int(_require(el, "id")), el.get("name", ""))
        if element == "Post":
            return AddPost(
                int(_require(el, "id")),
                int(_require(el, "timestamp")),
                _ref_id(_require(el, "submitter"), kind="u"),
            )
        if element == "Comment":
            return AddComment(
                int(_require(el, "id")),
                int(_require(el, "timestamp")),
                _ref_id(_require(el, "submitter"), kind="u"),
                int(_require(el, "parent")),
            )
        raise ReproError(f"{path}: unknown added element kind {element!r}")
    if xsi_type == "changes:ReferenceAdded":
        if reference == "likedBy":
            return AddLike(
                _ref_id(_require(el, "user"), kind="u"),
                _ref_id(_require(el, "comment"), kind="c"),
            )
        if reference == "friends":
            return AddFriendship(
                _ref_id(_require(el, "user"), kind="u"),
                _ref_id(_require(el, "friend"), kind="u"),
            )
        raise ReproError(f"{path}: unknown added reference {reference!r}")
    if xsi_type == "changes:ReferenceRemoved":
        if reference == "likedBy":
            return RemoveLike(
                _ref_id(_require(el, "user"), kind="u"),
                _ref_id(_require(el, "comment"), kind="c"),
            )
        if reference == "friends":
            return RemoveFriendship(
                _ref_id(_require(el, "user"), kind="u"),
                _ref_id(_require(el, "friend"), kind="u"),
            )
        raise ReproError(f"{path}: unknown removed reference {reference!r}")
    raise ReproError(f"{path}: unknown change type {xsi_type!r}")


def load_change_sets_xmi(directory) -> list[ChangeSet]:
    """All ``change*.xmi`` documents under ``directory``, in numeric order."""
    d = Path(directory)
    out: list[ChangeSet] = []
    for path in sorted(d.glob("change*.xmi")):
        root = ET.parse(path).getroot()
        if root.tag != f"{{{CHANGES_NS}}}ModelChangeSet":
            raise ReproError(f"{path}: not a ModelChangeSet document")
        out.append(ChangeSet([_parse_change(el, path) for el in root.findall("changes")]))
    return out
