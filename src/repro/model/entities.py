"""Entity kinds and external-id <-> internal-index mapping.

GraphBLAS matrices address rows/columns by dense 0-based indices, while the
case-study model uses sparse external ids (LDBC-style 64-bit ids).  An
:class:`IdMap` is an append-only bijection between the two; internal indices
are allocated in insertion order, which also makes matrix growth monotone --
an index, once assigned, never moves, the invariant the incremental queries
rely on.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

import numpy as np

from repro.util.buffers import IntArrayList
from repro.util.validation import ReproError

__all__ = ["EntityKind", "IdMap"]


class EntityKind(Enum):
    USER = "user"
    POST = "post"
    COMMENT = "comment"


class IdMap:
    """Append-only external-id <-> internal-index bijection."""

    __slots__ = ("_to_internal", "_to_external", "kind")

    def __init__(self, kind: EntityKind):
        self.kind = kind
        self._to_internal: dict[int, int] = {}
        self._to_external = IntArrayList()

    def add(self, external_id: int) -> int:
        """Register a new external id; returns its internal index."""
        if external_id in self._to_internal:
            raise ReproError(
                f"duplicate {self.kind.value} id {external_id}"
            )
        idx = len(self._to_external)
        self._to_internal[external_id] = idx
        self._to_external.append(external_id)
        return idx

    def index(self, external_id: int) -> int:
        try:
            return self._to_internal[external_id]
        except KeyError:
            raise ReproError(
                f"unknown {self.kind.value} id {external_id}"
            ) from None

    def external(self, index: int) -> int:
        return self._to_external[index]

    def externals(self, indices: Iterable[int]) -> list[int]:
        ext = self._to_external
        return [ext[i] for i in indices]

    def external_array(self) -> np.ndarray:
        """All external ids by internal index -- an O(1) read-only view."""
        return self._to_external.array()

    def __contains__(self, external_id: int) -> bool:
        return external_id in self._to_internal

    def __len__(self) -> int:
        return len(self._to_external)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IdMap<{self.kind.value}, n={len(self)}>"
