"""The SocialGraph: matrix-backed storage of the case-study model.

All relations are served as GraphBLAS matrices sized exactly to the current
entity counts, exactly as the paper's Fig. 4 lays them out.  Single-element
inserts are buffered and flushed in one vectorised batch per relation
whenever a matrix is read, so loading a graph of any size is O(E log E),
not O(E * nnz).

Two storage strategies back those matrix views (``storage=`` ctor arg):

* ``"dynamic"`` (default) -- each relation lives in a
  :class:`~repro.graphblas.dynamic.DynamicMatrix` arena (the paper's
  future-work item (1)): a flush costs O(Δ·degree) block updates, and the
  served compute ``Matrix`` is refreshed through the dirty-row freeze
  (only rows touched since the last read are re-canonicalised -- no O(nnz
  log nnz) rebuild, and the cached ``indptr``/transpose survive reads that
  change nothing).  A likes-*transpose* arena (|users| x |comments|) is
  maintained alongside, giving :meth:`SocialGraph.comments_liked_by` the
  O(degree) per-user index the delta-targeted Q2 detection reads.
* ``"matrix"`` -- the legacy log-flush scheme: one immutable canonical
  :class:`Matrix` per relation, each flush an O(nnz) ``assign_coo`` /
  ``remove_coo`` merge.  Kept as the property-test oracle and the
  benchmark baseline.

:meth:`SocialGraph.apply` consumes a :class:`~repro.model.changes.ChangeSet`
and returns a :class:`GraphDelta`, the exact inputs the paper's incremental
algorithms need: new entities, the new rootPost edges (``ΔRootPost``), new
likes edges (for ``likesCount+``) and new friendships (the ``NewFriends``
incidence matrix).
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

import numpy as np

from repro.graphblas import types as _gbtypes
from repro.graphblas.dynamic import DynamicMatrix
from repro.graphblas.matrix import Matrix
from repro.storage import make_store, resolve_storage
from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    Change,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.model.entities import EntityKind, IdMap
from repro.util.buffers import IntArrayList
from repro.util.validation import ReproError

__all__ = ["SocialGraph", "GraphDelta"]


class _MatrixRelation:
    """Legacy log-flush storage: canonical Matrix, O(nnz) merge per flush."""

    __slots__ = ("_m",)
    kind = "matrix"

    def __init__(self) -> None:
        self._m = Matrix.sparse(_gbtypes.BOOL, 0, 0)

    def resize(self, nrows: int, ncols: int) -> None:
        self._m.resize(nrows, ncols)

    def add(self, rows, cols) -> None:
        self._m.assign_coo(rows, cols, True)

    def remove(self, rows, cols) -> None:
        self._m.remove_coo(rows, cols)

    def view(self) -> Matrix:
        return self._m

    @property
    def nvals(self) -> int:
        return self._m.nvals


class _DynamicRelation:
    """Rebuild-free storage: DynamicMatrix arena + dirty-row freeze."""

    __slots__ = ("_dm",)
    kind = "dynamic"

    def __init__(self, store=None) -> None:
        self._dm = DynamicMatrix(_gbtypes.BOOL, 0, 0, store=store)

    def adopt(self, src) -> None:
        """Swap in flushed arena files from a snapshot (file-backed only)."""
        store = self._dm.store
        store.adopt_from(src)
        self._dm = DynamicMatrix.open(store)

    def resize(self, nrows: int, ncols: int) -> None:
        self._dm.resize(nrows, ncols)

    def add(self, rows, cols) -> None:
        self._dm.assign_coo(rows, cols, True)

    def remove(self, rows, cols) -> None:
        self._dm.remove_coo(rows, cols)

    def view(self) -> Matrix:
        return self._dm.freeze()

    @property
    def nvals(self) -> int:
        return self._dm.nvals

    def row_cols(self, i: int) -> np.ndarray:
        return self._dm.row(i)[0]


@dataclass
class GraphDelta:
    """What one applied ChangeSet added, in internal indices.

    Attributes mirror the paper's incremental-algorithm inputs:

    * ``new_root_post_edges`` -> ``ΔRootPost``
    * ``new_likes``           -> ``likesCount+`` (after per-comment counting)
    * ``new_friendships``     -> ``NewFriends`` incidence matrix columns
    """

    n_posts_before: int
    n_comments_before: int
    n_users_before: int
    n_posts_after: int
    n_comments_after: int
    n_users_after: int
    new_post_idx: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    new_comment_idx: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    new_user_idx: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    #: (post_idx, comment_idx) pairs
    new_root_post_edges: tuple = (np.zeros(0, np.int64), np.zeros(0, np.int64))
    #: (comment_idx, user_idx) pairs
    new_likes: tuple = (np.zeros(0, np.int64), np.zeros(0, np.int64))
    #: (user_idx_a, user_idx_b) pairs, a < b, already deduplicated
    new_friendships: tuple = (np.zeros(0, np.int64), np.zeros(0, np.int64))
    #: extension (future-work removals): (comment_idx, user_idx) pairs
    removed_likes: tuple = (np.zeros(0, np.int64), np.zeros(0, np.int64))
    #: extension: (user_idx_a, user_idx_b) pairs, a < b
    removed_friendships: tuple = (np.zeros(0, np.int64), np.zeros(0, np.int64))

    @property
    def is_empty(self) -> bool:
        return (
            self.new_post_idx.size == 0
            and self.new_comment_idx.size == 0
            and self.new_user_idx.size == 0
            and self.new_likes[0].size == 0
            and self.new_friendships[0].size == 0
            and not self.has_removals
        )

    @property
    def has_removals(self) -> bool:
        """True when the change set removed edges (scores may *decrease*)."""
        return self.removed_likes[0].size > 0 or self.removed_friendships[0].size > 0

    def delta_root_post(self) -> Matrix:
        """``ΔRootPost`` at the post-update dimensions (Alg. 2 input)."""
        p, c = self.new_root_post_edges
        return Matrix.from_coo(
            p, c, True, self.n_posts_after, self.n_comments_after, dtype=_gbtypes.BOOL
        )

    @staticmethod
    def _incidence(pairs: tuple, n_users: int) -> Matrix:
        a, b = pairs
        k = a.size
        rows = np.concatenate([a, b])
        cols = np.concatenate(
            [np.arange(k, dtype=np.int64), np.arange(k, dtype=np.int64)]
        )
        return Matrix.from_coo(rows, cols, 1, n_users, k, dtype=_gbtypes.INT64)

    def new_friends_incidence(self) -> Matrix:
        """The ``NewFriends`` incidence matrix of Q2's step 1.

        |users'| x |new friendships|; each column holds two 1s marking the
        endpoints of one inserted friendship.
        """
        return self._incidence(self.new_friendships, self.n_users_after)

    def removed_friends_incidence(self) -> Matrix:
        """Incidence matrix of removed friendships (extension).

        Used by the removal-aware affected-comment detection: a removed
        friendship can *split* a component of any comment both ex-friends
        like, exactly dual to the insertion case.
        """
        return self._incidence(self.removed_friendships, self.n_users_after)


class SocialGraph:
    """Users, Posts, Comments and their relations, stored as matrices."""

    def __init__(self, storage: Optional[str] = None, *, storage_dir=None) -> None:
        # "matrix" / "dynamic" / a backend name ("heap"/"mmap"/"sqlite");
        # None and "dynamic" defer the backend to REPRO_STORAGE (see
        # repro.storage.resolve_storage), so one env knob flips every
        # default-constructed graph in the process
        self.storage, self.backend = resolve_storage(storage)
        self._storage_dir = None
        self._dir_finalizer = None
        if self.backend not in (None, "heap"):
            if storage_dir is None:
                d = tempfile.mkdtemp(prefix="repro-arenas-")
                # owned temp dir: reclaimed at GC (or an explicit close());
                # POSIX keeps mapped/open files readable past the unlink
                self._dir_finalizer = weakref.finalize(
                    self, shutil.rmtree, d, ignore_errors=True
                )
            else:
                d = str(storage_dir)
                Path(d).mkdir(parents=True, exist_ok=True)
            self._storage_dir = d
        self.users = IdMap(EntityKind.USER)
        self.posts = IdMap(EntityKind.POST)
        self.comments = IdMap(EntityKind.COMMENT)

        self._post_ts = IntArrayList()
        self._comment_ts = IntArrayList()
        self._user_names: list[str] = []
        #: submitter of each post / comment (internal user idx)
        self._post_author: list[int] = []
        self._comment_author: list[int] = []
        #: parent of each comment: (is_post, internal idx of parent)
        self._comment_parent: list[tuple[bool, int]] = []
        #: root post of each comment (internal post idx) -- the rootPost pointer
        self._comment_root = IntArrayList()

        if self.storage == "matrix":
            self._rel = {
                name: _MatrixRelation()
                for name in ("root_post", "likes", "friends", "commented")
            }
            self._likes_t = None
        else:
            self._rel = {
                name: _DynamicRelation(self._make_store(name))
                for name in ("root_post", "likes", "friends", "commented")
            }
            #: |users| x |comments| mirror of likes, the per-user index behind
            #: :meth:`comments_liked_by` (dynamic storage only; the matrix
            #: strategy reads the cached ``likes.T`` instead)
            self._likes_t = _DynamicRelation(self._make_store("likes_t"))

        self._pending: dict[str, list] = {
            "root_post": [],
            "likes": [],
            "friends": [],
            "commented": [],
        }
        self._friend_keys: set[tuple[int, int]] = set()
        self._like_keys: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # storage seam (repro.storage)
    # ------------------------------------------------------------------

    def _make_store(self, name: str):
        return make_store(self.backend, directory=self._storage_dir, name=name)

    def _arena_relations(self) -> dict:
        rels: dict = dict(self._rel)
        rels["likes_t"] = self._likes_t
        return rels

    @property
    def storage_spec(self) -> str:
        """The ``storage=`` argument that recreates this graph's layout.

        Unlike :attr:`storage` (the relation *kind*, ``"matrix"`` or
        ``"dynamic"``), this also pins the arena backend -- what the
        sharded partitioner passes so shards inherit the source graph's
        storage, byte layout included.
        """
        if self.storage == "matrix":
            return "matrix"
        return self.backend

    def storage_bytes(self) -> int:
        """Resident arena bytes (file bytes for file-backed backends)."""
        self._flush()
        if self.storage == "dynamic":
            return sum(
                rel._dm.store.nbytes()
                for rel in self._arena_relations().values()
            )
        total = 0
        for rel in self._rel.values():
            m = rel.view()
            total += m._rows.nbytes + m._cols.nbytes + m._values.nbytes
        return total

    def flush_storage(self) -> bool:
        """Persist every arena through its store; False when not file-backed."""
        if self.storage != "dynamic" or self.backend == "heap":
            return False
        self._flush()
        for rel in self._arena_relations().values():
            rel._dm.flush_storage()
        return True

    def snapshot_arenas(self, dest) -> Optional[str]:
        """Flush + copy every arena into ``dest``; the backend name, or
        None when this graph has no durable arenas (heap/matrix -- the
        snapshot store then relies on the CSV serialisation alone)."""
        if not self.flush_storage():
            return None
        dest = Path(dest)
        for name, rel in self._arena_relations().items():
            rel._dm.store.snapshot_to(dest / name)
        return self.backend

    def adopt_arenas(self, src) -> None:
        """Adopt flushed arena files from a snapshot directory.

        The inverse of :meth:`snapshot_arenas`, for a graph whose
        *entities* are already loaded: relations and the likes-transpose
        mirror remap onto the copied files (no CSV edge replay), pending
        edge ops are discarded, and the edge key sets are rebuilt from
        the adopted arenas.
        """
        src = Path(src)
        for name, rel in self._arena_relations().items():
            rel.adopt(src / name)
        for ops in self._pending.values():
            ops.clear()
        lr, lc, _ = self._rel["likes"]._dm.to_coo()
        self._like_keys = set(zip(lr.tolist(), lc.tolist()))
        fr, fc, _ = self._rel["friends"]._dm.to_coo()
        self._friend_keys = {
            (a, b) for a, b in zip(fr.tolist(), fc.tolist()) if a < b
        }

    def close(self) -> None:
        """Release arena file handles and reclaim an owned temp directory.

        Optional (the weakref finalizer reclaims at GC); live matrix
        views keep working afterwards -- POSIX keeps unlinked files
        readable while mapped -- but further flushes/snapshots will fail.
        """
        if self.storage == "dynamic":
            for rel in self._arena_relations().values():
                rel._dm.store.close()
        if self._dir_finalizer is not None:
            self._dir_finalizer()

    # ------------------------------------------------------------------
    # entity counts / attribute views
    # ------------------------------------------------------------------

    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def num_posts(self) -> int:
        return len(self.posts)

    @property
    def num_comments(self) -> int:
        return len(self.comments)

    @property
    def post_timestamps(self) -> np.ndarray:
        return self._post_ts.array()

    @property
    def comment_timestamps(self) -> np.ndarray:
        return self._comment_ts.array()

    def comment_root_posts(self) -> np.ndarray:
        """rootPost pointer per comment (internal post idx)."""
        return self._comment_root.array()

    # ------------------------------------------------------------------
    # single-element mutators (buffered)
    # ------------------------------------------------------------------

    def add_user(self, user_id: int, name: str = "") -> int:
        idx = self.users.add(user_id)
        self._user_names.append(name)
        return idx

    def add_post(self, post_id: int, timestamp: int, user_id: int) -> int:
        if post_id in self.comments:
            raise ReproError(f"submission id {post_id} already used by a comment")
        idx = self.posts.add(post_id)
        self._post_ts.append(int(timestamp))
        self._post_author.append(self.users.index(user_id))
        return idx

    def add_comment(
        self, comment_id: int, timestamp: int, user_id: int, parent_id: int
    ) -> int:
        if comment_id in self.posts:
            raise ReproError(f"submission id {comment_id} already used by a post")
        if parent_id in self.posts:
            parent = (True, self.posts.index(parent_id))
            root = parent[1]
        elif parent_id in self.comments:
            pidx = self.comments.index(parent_id)
            parent = (False, pidx)
            root = self._comment_root[pidx]
        else:
            raise ReproError(f"comment {comment_id}: unknown parent {parent_id}")
        idx = self.comments.add(comment_id)
        self._comment_ts.append(int(timestamp))
        self._comment_author.append(self.users.index(user_id))
        self._comment_parent.append(parent)
        self._comment_root.append(root)
        self._pending["root_post"].append((root, idx))
        if not parent[0]:
            self._pending["commented"].append((idx, parent[1]))
        return idx

    def add_like(self, user_id: int, comment_id: int) -> tuple[int, int] | None:
        """Insert a likes edge; returns (comment_idx, user_idx) or None if dup."""
        c = self.comments.index(comment_id)
        u = self.users.index(user_id)
        if (c, u) in self._like_keys:
            return None
        self._like_keys.add((c, u))
        self._pending["likes"].append(("+", (c, u)))
        return (c, u)

    def remove_like(self, user_id: int, comment_id: int) -> tuple[int, int] | None:
        """Remove a likes edge (extension); returns the key or None if absent."""
        c = self.comments.index(comment_id)
        u = self.users.index(user_id)
        if (c, u) not in self._like_keys:
            return None
        self._like_keys.discard((c, u))
        self._pending["likes"].append(("-", (c, u)))
        return (c, u)

    def add_friendship(self, user1_id: int, user2_id: int) -> tuple[int, int] | None:
        """Insert a symmetric friends edge; returns (min_idx, max_idx) or None."""
        a = self.users.index(user1_id)
        b = self.users.index(user2_id)
        if a == b:
            raise ReproError(f"self-friendship for user {user1_id}")
        key = (min(a, b), max(a, b))
        if key in self._friend_keys:
            return None
        self._friend_keys.add(key)
        self._pending["friends"].append(("+", key))
        return key

    def remove_friendship(self, user1_id: int, user2_id: int) -> tuple[int, int] | None:
        """Remove a friends edge (extension); returns the key or None if absent."""
        a = self.users.index(user1_id)
        b = self.users.index(user2_id)
        key = (min(a, b), max(a, b))
        if key not in self._friend_keys:
            return None
        self._friend_keys.discard(key)
        self._pending["friends"].append(("-", key))
        return key

    # ------------------------------------------------------------------
    # matrix views (flushed on demand)
    # ------------------------------------------------------------------

    def _flush(self) -> None:
        pend = self._pending
        dirty = any(pend.values())
        np_, nc, nu = self.num_posts, self.num_comments, self.num_users
        rel = self._rel
        # resizes are strict no-ops when the entity counts are unchanged,
        # so a read-after-read flush costs four integer comparisons and
        # destroys no matrix caches
        rel["root_post"].resize(np_, nc)
        rel["likes"].resize(nc, nu)
        rel["friends"].resize(nu, nu)
        rel["commented"].resize(nc, nc)
        if self._likes_t is not None:
            self._likes_t.resize(nu, nc)
        if not dirty:
            return
        if pend["root_post"]:
            arr = np.asarray(pend["root_post"], dtype=np.int64)
            rel["root_post"].add(arr[:, 0], arr[:, 1])
            pend["root_post"].clear()
        if pend["likes"]:
            adds, removes = self._resolve_ops(pend["likes"])
            if adds.size:
                rel["likes"].add(adds[:, 0], adds[:, 1])
                if self._likes_t is not None:
                    self._likes_t.add(adds[:, 1], adds[:, 0])
            if removes.size:
                rel["likes"].remove(removes[:, 0], removes[:, 1])
                if self._likes_t is not None:
                    self._likes_t.remove(removes[:, 1], removes[:, 0])
            pend["likes"].clear()
        if pend["friends"]:
            adds, removes = self._resolve_ops(pend["friends"])
            if adds.size:
                rows = np.concatenate([adds[:, 0], adds[:, 1]])
                cols = np.concatenate([adds[:, 1], adds[:, 0]])
                rel["friends"].add(rows, cols)
            if removes.size:
                rows = np.concatenate([removes[:, 0], removes[:, 1]])
                cols = np.concatenate([removes[:, 1], removes[:, 0]])
                rel["friends"].remove(rows, cols)
            pend["friends"].clear()
        if pend["commented"]:
            arr = np.asarray(pend["commented"], dtype=np.int64)
            rel["commented"].add(arr[:, 0], arr[:, 1])
            pend["commented"].clear()

    @staticmethod
    def _resolve_ops(log: list) -> tuple[np.ndarray, np.ndarray]:
        """Collapse an ordered (+/-, key) op log to final add/remove batches.

        For each key only the *last* operation decides the outcome -- an
        edge added and removed within one buffered window is a net no-op on
        a matrix that never contained it, and removing it is idempotent.
        """
        last: dict = {}
        for op, key in log:
            last[key] = op
        adds = [k for k, op in last.items() if op == "+"]
        removes = [k for k, op in last.items() if op == "-"]
        to_arr = lambda pairs: (
            np.asarray(pairs, dtype=np.int64)
            if pairs
            else np.zeros((0, 2), dtype=np.int64)
        )
        return to_arr(adds), to_arr(removes)

    @property
    def root_post(self) -> Matrix:
        """BOOL |posts| x |comments|: post is the root of comment."""
        self._flush()
        return self._rel["root_post"].view()

    @property
    def likes(self) -> Matrix:
        """BOOL |comments| x |users|: user likes comment."""
        self._flush()
        return self._rel["likes"].view()

    @property
    def friends(self) -> Matrix:
        """BOOL |users| x |users|, symmetric."""
        self._flush()
        return self._rel["friends"].view()

    @property
    def commented(self) -> Matrix:
        """BOOL |comments| x |comments|: reply -> parent comment."""
        self._flush()
        return self._rel["commented"].view()

    def likers_of(self, comment_idx: int) -> np.ndarray:
        """Sorted internal user indices liking the comment -- O(degree).

        Reads the likes storage directly, *without* forcing a freeze of the
        likes matrix: on the dynamic storage a like-only change set can be
        scored straight off the arena rows.
        """
        self._flush()
        if self.storage == "dynamic":
            users = self._rel["likes"].row_cols(comment_idx)
            users.sort()  # row_cols returns a copy; in-place is safe
            return users
        likes = self._rel["likes"].view()
        ip = likes.indptr
        # copy: callers may mutate (the dynamic branch sorts in place), and a
        # live view into Matrix._cols must never leak
        return likes._cols[ip[comment_idx] : ip[comment_idx + 1]].copy()

    def comments_liked_by(self, user_idx: int) -> np.ndarray:
        """Internal indices of the comments ``user_idx`` likes.

        O(degree): the dynamic storage reads its maintained likes-transpose
        arena; the matrix storage reads a row of the cached ``likes.T``
        (rebuilt only when likes actually changed, thanks to the
        cache-preserving flush).  The returned order is unspecified.
        """
        self._flush()
        if self._likes_t is not None:
            return self._likes_t.row_cols(user_idx)
        t = self._rel["likes"].view().T
        ip = t.indptr
        return t._cols[ip[user_idx] : ip[user_idx + 1]].copy()

    def comments_liked_by_both(self, user_a: int, user_b: int) -> np.ndarray:
        """Comments that *both* users like -- O(deg(a) + deg(b)).

        The per-friendship kernel of the delta-targeted Q2 affected-comment
        detection (each entry is a comment whose induced liker subgraph
        gains or loses the (a, b) edge).
        """
        ca = self.comments_liked_by(user_a)
        cb = self.comments_liked_by(user_b)
        if ca.size == 0 or cb.size == 0:
            return np.zeros(0, dtype=np.int64)
        return np.intersect1d(ca, cb, assume_unique=True)

    # ------------------------------------------------------------------
    # change application
    # ------------------------------------------------------------------

    def apply(self, change_set: ChangeSet) -> GraphDelta:
        """Apply a batch of insertions; returns the delta for incremental queries."""
        np0, nc0, nu0 = self.num_posts, self.num_comments, self.num_users
        new_posts: list[int] = []
        new_comments: list[int] = []
        new_users: list[int] = []
        new_rp: list[tuple[int, int]] = []
        # Net effect per edge key over the change set: "+" inserted, "-"
        # removed; an insert-then-remove (or vice versa) cancels out so the
        # delta describes exactly the before -> after difference.
        like_net: dict[tuple[int, int], str] = {}
        friend_net: dict[tuple[int, int], str] = {}

        def _net(net: dict, key, op: str) -> None:
            prev = net.get(key)
            if prev is not None and prev != op:
                del net[key]
            else:
                net[key] = op

        for change in change_set:
            if isinstance(change, AddUser):
                new_users.append(self.add_user(change.user_id, change.name))
            elif isinstance(change, AddPost):
                new_posts.append(
                    self.add_post(change.post_id, change.timestamp, change.user_id)
                )
            elif isinstance(change, AddComment):
                idx = self.add_comment(
                    change.comment_id,
                    change.timestamp,
                    change.user_id,
                    change.parent_id,
                )
                new_comments.append(idx)
                new_rp.append((self._comment_root[idx], idx))
            elif isinstance(change, AddLike):
                edge = self.add_like(change.user_id, change.comment_id)
                if edge is not None:
                    _net(like_net, edge, "+")
            elif isinstance(change, AddFriendship):
                edge = self.add_friendship(change.user1_id, change.user2_id)
                if edge is not None:
                    _net(friend_net, edge, "+")
            elif isinstance(change, RemoveLike):
                edge = self.remove_like(change.user_id, change.comment_id)
                if edge is not None:
                    _net(like_net, edge, "-")
            elif isinstance(change, RemoveFriendship):
                edge = self.remove_friendship(change.user1_id, change.user2_id)
                if edge is not None:
                    _net(friend_net, edge, "-")
            else:  # pragma: no cover - defensive
                raise ReproError(f"unknown change type {type(change)}")

        self._flush()

        def _pairs(pairs: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
            if not pairs:
                return np.zeros(0, np.int64), np.zeros(0, np.int64)
            arr = np.asarray(pairs, dtype=np.int64)
            return arr[:, 0], arr[:, 1]

        return GraphDelta(
            n_posts_before=np0,
            n_comments_before=nc0,
            n_users_before=nu0,
            n_posts_after=self.num_posts,
            n_comments_after=self.num_comments,
            n_users_after=self.num_users,
            new_post_idx=np.asarray(new_posts, dtype=np.int64),
            new_comment_idx=np.asarray(new_comments, dtype=np.int64),
            new_user_idx=np.asarray(new_users, dtype=np.int64),
            new_root_post_edges=_pairs(new_rp),
            new_likes=_pairs([k for k, op in like_net.items() if op == "+"]),
            new_friendships=_pairs([k for k, op in friend_net.items() if op == "+"]),
            removed_likes=_pairs([k for k, op in like_net.items() if op == "-"]),
            removed_friendships=_pairs(
                [k for k, op in friend_net.items() if op == "-"]
            ),
        )

    # ------------------------------------------------------------------

    def to_change_stream(self) -> Iterator[Change]:
        """The graph as a canonical insert stream that rebuilds it exactly.

        Yields every entity and edge as the :mod:`repro.model.changes`
        insert that would create it, ordered so each change's references
        are already satisfied: users, then posts, then comments (internal
        order -- a parent comment always precedes its children), then
        friendships and likes (sorted by internal index pairs, so the
        stream is deterministic).  Replaying the stream into an empty
        graph reproduces identical id maps, timestamps and relations --
        the export the sharded router's initial-load partitioning
        (:func:`repro.sharding.partition.partition_graph`) splits.
        """
        user_ext = self.users.external_array()
        for i, u in enumerate(user_ext.tolist()):
            yield AddUser(u, self._user_names[i])
        post_ext = self.posts.external_array()
        for i, p in enumerate(post_ext.tolist()):
            yield AddPost(p, int(self._post_ts[i]), int(user_ext[self._post_author[i]]))
        comment_ext = self.comments.external_array()
        for i, c in enumerate(comment_ext.tolist()):
            is_post, pidx = self._comment_parent[i]
            parent = int(post_ext[pidx]) if is_post else int(comment_ext[pidx])
            yield AddComment(
                c, int(self._comment_ts[i]), int(user_ext[self._comment_author[i]]), parent
            )
        for a, b in sorted(self._friend_keys):
            yield AddFriendship(int(user_ext[a]), int(user_ext[b]))
        for c, u in sorted(self._like_keys):
            yield AddLike(int(user_ext[u]), int(comment_ext[c]))

    def stats(self) -> dict:
        """Node/edge counts in Table II's accounting (nodes + all edge kinds)."""
        self._flush()
        rel = self._rel
        n_edges = (
            rel["root_post"].nvals
            + rel["commented"].nvals
            + rel["likes"].nvals
            + len(self._friend_keys)
        )
        return {
            "users": self.num_users,
            "posts": self.num_posts,
            "comments": self.num_comments,
            "nodes": self.num_users + self.num_posts + self.num_comments,
            "edges": n_edges,
            "likes": rel["likes"].nvals,
            "friendships": len(self._friend_keys),
            "storage": self.storage,
        }

    def storage_stats(self) -> dict:
        """Per-relation storage accounting (arena occupancy when dynamic)."""
        self._flush()
        out: dict = {
            "kind": self.storage,
            "backend": self.backend,
            "bytes": self.storage_bytes(),
        }
        if self.storage == "dynamic":
            relations = dict(self._rel)
            relations["likes_t"] = self._likes_t
            out["relations"] = {
                name: rel._dm.memory_stats() for name, rel in relations.items()
            }
        else:
            out["relations"] = {
                name: {"filled_slots": rel.nvals} for name, rel in self._rel.items()
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"SocialGraph<users={s['users']}, posts={s['posts']}, "
            f"comments={s['comments']}, edges={s['edges']}>"
        )
