"""The TTC 2018 "Social Media" data model.

Users write Submissions; every submission tree is rooted in a Post, the other
nodes are Comments.  Users *like* Comments and maintain symmetric *friends*
relations.  Comments carry a direct ``rootPost`` pointer (part of the case
model, derived automatically here from the parent chain).

:class:`~repro.model.graph.SocialGraph` stores the relations as growable
GraphBLAS matrices in the layout of the paper's Fig. 4:

* ``root_post``  BOOL  |posts|    x |comments|
* ``likes``      BOOL  |comments| x |users|
* ``friends``    BOOL  |users|    x |users|   (symmetric)
* ``commented``  BOOL  |comments| x |comments|  (reply edges, model-complete)
"""

from repro.model.entities import EntityKind, IdMap
from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    Change,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.model.graph import GraphDelta, SocialGraph
from repro.model.loader import (
    load_change_sets,
    load_graph,
    save_change_sets,
    save_graph,
)
from repro.model.xmi import (
    load_change_sets_xmi,
    load_graph_xmi,
    save_change_sets_xmi,
    save_graph_xmi,
)

__all__ = [
    "EntityKind",
    "IdMap",
    "SocialGraph",
    "GraphDelta",
    "Change",
    "ChangeSet",
    "AddUser",
    "AddPost",
    "AddComment",
    "AddLike",
    "AddFriendship",
    "RemoveLike",
    "RemoveFriendship",
    "load_graph",
    "save_graph",
    "load_change_sets",
    "save_change_sets",
    "load_graph_xmi",
    "save_graph_xmi",
    "load_change_sets_xmi",
    "save_change_sets_xmi",
]
