"""Change (update) operations.

The TTC 2018 benchmark repeatedly applies *change sequences* -- batches of
element insertions -- and re-evaluates the queries after each batch.  The
case study's update language is insert-only (the paper's future work notes
that removals would be an interesting extension); the five insert kinds map
1:1 onto the case model:

* :class:`AddUser`        -- a new User node
* :class:`AddPost`        -- a new Post with its submitter
* :class:`AddComment`     -- a new Comment under a parent submission
  (rootPost pointer derived from the parent chain)
* :class:`AddLike`        -- a likes edge User -> Comment
* :class:`AddFriendship`  -- a symmetric friends edge between two Users

A :class:`ChangeSet` is an ordered list; later changes may reference entities
introduced earlier in the same set (the example in the paper's Fig. 3b does
exactly that: Comment c4 is inserted and immediately liked).

**Extension (the paper's future work)**: "it would be interesting to
investigate the performance of the solution in the presence of more
realistic update operations, including both insertions and removals."
:class:`RemoveLike` ("unlike") and :class:`RemoveFriendship` ("unfriend")
implement the realistic edge removals; node removals are out of scope (the
case model gives submissions no lifecycle).  Removals make scores
non-monotone, which changes the top-k maintenance strategy -- see
:mod:`repro.queries.topk`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = [
    "AddUser",
    "AddPost",
    "AddComment",
    "AddLike",
    "AddFriendship",
    "RemoveLike",
    "RemoveFriendship",
    "Change",
    "ChangeSet",
]


@dataclass(frozen=True)
class AddUser:
    user_id: int
    name: str = ""


@dataclass(frozen=True)
class AddPost:
    post_id: int
    timestamp: int
    user_id: int


@dataclass(frozen=True)
class AddComment:
    comment_id: int
    timestamp: int
    user_id: int
    parent_id: int  # a Post id or a Comment id (submission namespace)


@dataclass(frozen=True)
class AddLike:
    user_id: int
    comment_id: int


@dataclass(frozen=True)
class AddFriendship:
    user1_id: int
    user2_id: int


@dataclass(frozen=True)
class RemoveLike:
    """Extension: the user withdraws a like ("unlike")."""

    user_id: int
    comment_id: int


@dataclass(frozen=True)
class RemoveFriendship:
    """Extension: the symmetric friends edge is removed ("unfriend")."""

    user1_id: int
    user2_id: int


Change = Union[
    AddUser, AddPost, AddComment, AddLike, AddFriendship, RemoveLike, RemoveFriendship
]

_KIND_ORDER = (
    AddUser,
    AddPost,
    AddComment,
    AddLike,
    AddFriendship,
    RemoveLike,
    RemoveFriendship,
)


@dataclass
class ChangeSet:
    """An ordered batch of insertions applied atomically before re-evaluation."""

    changes: list[Change] = field(default_factory=list)

    def append(self, change: Change) -> "ChangeSet":
        self.changes.append(change)
        return self

    def extend(self, changes) -> "ChangeSet":
        self.changes.extend(changes)
        return self

    def __iter__(self) -> Iterator[Change]:
        return iter(self.changes)

    def __len__(self) -> int:
        return len(self.changes)

    def count(self, kind: type) -> int:
        return sum(1 for c in self.changes if isinstance(c, kind))

    def summary(self) -> str:
        parts = [
            f"{kind.__name__}={self.count(kind)}"
            for kind in _KIND_ORDER
            if self.count(kind)
        ]
        return f"ChangeSet({len(self)} changes: {', '.join(parts) or 'empty'})"
