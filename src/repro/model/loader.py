"""CSV serialisation of graphs and change sequences.

The TTC 2018 benchmark distributes models as files plus a numbered series of
change sets.  We use a documented CSV dialect (the original uses EMF/XMI,
which would add a model-framework dependency without exercising any paper
behaviour):

``users.csv``      ``id,name``
``posts.csv``      ``id,timestamp,user_id``
``comments.csv``   ``id,timestamp,user_id,parent_id``
``friends.csv``    ``user1_id,user2_id``   (one row per undirected edge)
``likes.csv``      ``user_id,comment_id``
``change{NN}.csv`` one change per row, first column is the kind tag:
    ``U,id,name`` / ``P,id,ts,user`` / ``C,id,ts,user,parent`` /
    ``L,user,comment`` / ``F,user1,user2`` and the removal extension
    ``-L,user,comment`` (unlike) / ``-F,user1,user2`` (unfriend)
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.model.changes import (
    AddComment,
    AddFriendship,
    AddLike,
    AddPost,
    AddUser,
    ChangeSet,
    RemoveFriendship,
    RemoveLike,
)
from repro.model.graph import SocialGraph
from repro.util.validation import ReproError

__all__ = [
    "save_graph",
    "load_graph",
    "save_change_sets",
    "load_change_sets",
    "change_to_row",
    "row_to_change",
]


def save_graph(directory, graph: SocialGraph) -> None:
    """Write a SocialGraph to ``directory`` in the CSV dialect above."""
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)

    with open(d / "users.csv", "w", newline="") as f:
        w = csv.writer(f)
        for idx in range(graph.num_users):
            w.writerow([graph.users.external(idx), graph._user_names[idx]])

    with open(d / "posts.csv", "w", newline="") as f:
        w = csv.writer(f)
        for idx in range(graph.num_posts):
            w.writerow(
                [
                    graph.posts.external(idx),
                    graph._post_ts[idx],
                    graph.users.external(graph._post_author[idx]),
                ]
            )

    with open(d / "comments.csv", "w", newline="") as f:
        w = csv.writer(f)
        for idx in range(graph.num_comments):
            is_post, pidx = graph._comment_parent[idx]
            parent_ext = (
                graph.posts.external(pidx) if is_post else graph.comments.external(pidx)
            )
            w.writerow(
                [
                    graph.comments.external(idx),
                    graph._comment_ts[idx],
                    graph.users.external(graph._comment_author[idx]),
                    parent_ext,
                ]
            )

    with open(d / "friends.csv", "w", newline="") as f:
        w = csv.writer(f)
        for a, b in sorted(graph._friend_keys):
            w.writerow([graph.users.external(a), graph.users.external(b)])

    with open(d / "likes.csv", "w", newline="") as f:
        w = csv.writer(f)
        for c, u in sorted(graph._like_keys):
            w.writerow([graph.users.external(u), graph.comments.external(c)])


def load_graph(directory, *, storage=None, storage_dir=None,
               edges: bool = True) -> SocialGraph:
    """Read a SocialGraph from ``directory``.

    Comments are loaded in file order; a comment's parent must precede it,
    which :func:`save_graph` guarantees (insertion order) and generators
    produce naturally.  ``storage``/``storage_dir`` pass through to the
    :class:`SocialGraph` constructor; ``edges=False`` loads entities only
    -- the snapshot store's arena-adoption fast path, where friendships
    and likes arrive by remapping flushed arena files instead of CSV
    replay (:meth:`SocialGraph.adopt_arenas`).
    """
    d = Path(directory)
    g = SocialGraph(storage, storage_dir=storage_dir)

    with open(d / "users.csv", newline="") as f:
        for row in csv.reader(f):
            if row:
                g.add_user(int(row[0]), row[1] if len(row) > 1 else "")

    with open(d / "posts.csv", newline="") as f:
        for row in csv.reader(f):
            if row:
                g.add_post(int(row[0]), int(row[1]), int(row[2]))

    with open(d / "comments.csv", newline="") as f:
        for row in csv.reader(f):
            if row:
                g.add_comment(int(row[0]), int(row[1]), int(row[2]), int(row[3]))

    if edges:
        with open(d / "friends.csv", newline="") as f:
            for row in csv.reader(f):
                if row:
                    g.add_friendship(int(row[0]), int(row[1]))

        with open(d / "likes.csv", newline="") as f:
            for row in csv.reader(f):
                if row:
                    g.add_like(int(row[0]), int(row[1]))

    return g


_TAGS = {"U", "P", "C", "L", "F"}


def change_to_row(ch) -> list:
    """One change -> one CSV row in the tagged dialect above.

    Shared by the change-set files and the serving layer's append-only
    change log (:mod:`repro.serving.persistence`), so a log written by one
    can always be replayed by the other.
    """
    if isinstance(ch, AddUser):
        return ["U", ch.user_id, ch.name]
    if isinstance(ch, AddPost):
        return ["P", ch.post_id, ch.timestamp, ch.user_id]
    if isinstance(ch, AddComment):
        return ["C", ch.comment_id, ch.timestamp, ch.user_id, ch.parent_id]
    if isinstance(ch, AddLike):
        return ["L", ch.user_id, ch.comment_id]
    if isinstance(ch, AddFriendship):
        return ["F", ch.user1_id, ch.user2_id]
    if isinstance(ch, RemoveLike):
        return ["-L", ch.user_id, ch.comment_id]
    if isinstance(ch, RemoveFriendship):
        return ["-F", ch.user1_id, ch.user2_id]
    raise ReproError(f"unknown change type {type(ch)}")


def row_to_change(row: list):
    """One tagged CSV row -> the change it encodes (inverse of the above)."""
    tag = row[0]
    if tag == "U":
        return AddUser(int(row[1]), row[2] if len(row) > 2 else "")
    if tag == "P":
        return AddPost(int(row[1]), int(row[2]), int(row[3]))
    if tag == "C":
        return AddComment(int(row[1]), int(row[2]), int(row[3]), int(row[4]))
    if tag == "L":
        return AddLike(int(row[1]), int(row[2]))
    if tag == "F":
        return AddFriendship(int(row[1]), int(row[2]))
    if tag == "-L":
        return RemoveLike(int(row[1]), int(row[2]))
    if tag == "-F":
        return RemoveFriendship(int(row[1]), int(row[2]))
    raise ReproError(f"unknown change tag {tag!r}")


def save_change_sets(directory, change_sets: list[ChangeSet]) -> None:
    d = Path(directory)
    d.mkdir(parents=True, exist_ok=True)
    for n, cs in enumerate(change_sets, start=1):
        with open(d / f"change{n:02d}.csv", "w", newline="") as f:
            w = csv.writer(f)
            for ch in cs:
                w.writerow(change_to_row(ch))


def load_change_sets(directory) -> list[ChangeSet]:
    d = Path(directory)
    out: list[ChangeSet] = []
    for path in sorted(d.glob("change*.csv")):
        cs = ChangeSet()
        with open(path, newline="") as f:
            for row in csv.reader(f):
                if not row:
                    continue
                try:
                    cs.append(row_to_change(row))
                except ReproError as exc:
                    raise ReproError(f"{exc} in {path}") from None
        out.append(cs)
    return out
