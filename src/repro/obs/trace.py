"""Span tracing: follow one micro-batch end-to-end through the stack.

The serving story -- continuous updates racing continuous reads -- is only
credible with evidence of *where time goes*.  A :class:`Tracer` records
**spans** (named, timed intervals with parent/child links) along the write
path the DESIGN.md span taxonomy names::

    submit -> batch -> wal
                    -> scatter -> shard -> batch -> wal
                                                 -> apply
                                                 -> refresh (per engine)
                                                 -> commit

plus ``flush``, ``query``, ``snapshot`` and ``recover``.  One submitted
micro-batch therefore yields one connected tree spanning the router, every
shard and every engine refresh (property-tested in
``tests/obs/test_service_tracing.py``).

Design constraints, in order:

* **disabled-by-default cheap** -- the process-wide tracer slot holds
  ``None`` unless ``REPRO_TRACE`` is set or :func:`set_tracer` was called;
  every instrumentation site guards on one :func:`get_tracer` call and
  skips all span work when it returns ``None``;
* **deterministic** -- no RNG anywhere: span ids come from a monotone
  counter, and the spans the serving layer *measures on worker threads*
  (engine refreshes) are recorded post-hoc in the fixed engine-commit
  order via :meth:`Tracer.record`, so a serial-configuration run produces
  an identical span log every time;
* **thread-safe** -- span starts/ends touch the tracer under one lock;
  parent linkage flows through a :mod:`contextvars` current-span slot
  within a thread and is passed explicitly across thread boundaries (the
  sharded scatter pool, the engine fan-out).

Export targets: :meth:`Tracer.chrome_trace` emits the Chrome trace-event
JSON object (open it in ``chrome://tracing`` or Perfetto), and
:meth:`Tracer.finished` returns the structured in-memory log tests
assert on.

>>> t = Tracer()
>>> with t.span("submit", changes=3) as root:
...     with t.span("batch", version=1):
...         pass
>>> [ (s["name"], s["parent_id"]) for s in t.finished() ]
[('batch', 1), ('submit', None)]
>>> t.chrome_trace()["traceEvents"][0]["ph"]
'X'
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
from pathlib import Path
from typing import Optional

from repro.util.timer import WallClock

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "get_tracer",
    "set_tracer",
    "span_if",
    "trace_enabled_from_env",
    "trace_output_path",
]

#: the thread/task-local parent slot: a span entered as a context manager
#: becomes the default parent of spans started in the same thread
_current: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "obs_current_span", default=None
)


def current_span() -> Optional["Span"]:
    """The innermost span entered (as a context manager) in this thread."""
    return _current.get()


class Span:
    """One named, timed interval; ends at most once.

    Use as a context manager (installs itself as the thread's current
    span, ends on exit, stamps an ``error`` attribute when exiting on an
    exception) or call :meth:`end` explicitly.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "t0", "attrs", "_token", "_ended")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], t0: float, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self.attrs = attrs
        self._token = None
        self._ended = False

    def set(self, **attrs) -> "Span":
        """Attach attributes to a live span (e.g. a result computed late)."""
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        if self._ended:
            return
        self._ended = True
        self._tracer._finish(self, WallClock.now() - self.t0)

    def __enter__(self) -> "Span":
        self._token = _current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = type(exc).__name__
        self.end()


class Tracer:
    """Thread-safe span collector with Chrome trace-event export.

    Finished spans accumulate as plain dicts (``name``, ``span_id``,
    ``parent_id``, ``t0``, ``duration``, ``attrs``) in *end* order --
    children before parents, exactly the order a post-order walk of the
    trace tree visits them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 1
        self._open = 0
        self._spans: list[dict] = []
        #: epoch all exported timestamps are relative to
        self.t_epoch = WallClock.now()

    # -- recording ------------------------------------------------------

    def span(self, name: str, parent: Optional[Span] = None, **attrs) -> Span:
        """Start a span now; parent defaults to the thread's current span."""
        if parent is None:
            parent = _current.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._open += 1
        return Span(
            self, name, span_id,
            parent.span_id if parent is not None else None,
            WallClock.now(), attrs,
        )

    def record(self, name: str, t0: float, duration: float,
               parent: Optional[Span] = None, **attrs) -> int:
        """Append a span measured elsewhere (post-hoc; no open state).

        The serving layer's engine refreshes run on fan-out worker threads
        but are *recorded* here from the deterministic commit loop, so the
        span log order is reproducible regardless of thread scheduling.
        Returns the assigned span id.
        """
        if parent is None:
            parent = _current.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            self._spans.append({
                "name": name,
                "span_id": span_id,
                "parent_id": parent.span_id if parent is not None else None,
                "t0": t0,
                "duration": duration,
                "attrs": attrs,
                "tid": threading.get_ident(),
            })
        return span_id

    def _finish(self, span: Span, duration: float) -> None:
        with self._lock:
            self._open -= 1
            self._spans.append({
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "t0": span.t0,
                "duration": duration,
                "attrs": span.attrs,
                "tid": threading.get_ident(),
            })

    # -- inspection -----------------------------------------------------

    @property
    def open_spans(self) -> int:
        """Spans started but not yet ended (0 after a quiescent service)."""
        with self._lock:
            return self._open

    def finished(self) -> list[dict]:
        """The structured span log (copies; ``tid`` omitted -- it is an
        export concern, not part of the deterministic record)."""
        with self._lock:
            return [{k: v for k, v in s.items() if k != "tid"} for s in self._spans]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def drain(self) -> list[dict]:
        """Atomically take and clear the finished-span log (``tid`` kept).

        The shard-worker RPC loop ships its spans back to the router in
        every reply envelope; drain-and-clear under one lock guarantees a
        span is shipped exactly once.
        """
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def graft(self, spans: list[dict], parent: Optional[Span] = None) -> None:
        """Splice a *foreign* span log (a worker's :meth:`drain`) in here.

        Re-issues every span id from this tracer's counter so grafted ids
        never collide with local ones, rewrites parent links through the
        same map, and hangs the foreign roots (parentless spans, or spans
        whose parent was shipped in an earlier envelope) under ``parent``
        -- typically the router-side ``shard`` span that was open while
        the worker produced them.  Keeps the worker's end-order, so the
        merged log remains a post-order walk of one connected tree.
        """
        if not spans:
            return
        if parent is None:
            parent = _current.get()
        base = parent.span_id if parent is not None else None
        with self._lock:
            id_map: dict[int, int] = {}
            for s in spans:
                id_map[s["span_id"]] = self._next_id
                self._next_id += 1
            for s in spans:
                pid = s.get("parent_id")
                self._spans.append({
                    "name": s["name"],
                    "span_id": id_map[s["span_id"]],
                    "parent_id": id_map.get(pid, base) if pid is not None else base,
                    "t0": s["t0"],
                    "duration": s["duration"],
                    "attrs": dict(s.get("attrs") or {}),
                    "tid": s.get("tid", 0),
                })

    # -- export ---------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object (``chrome://tracing`` /
        Perfetto).  Spans become ``"ph": "X"`` complete events;
        microsecond timestamps are relative to the tracer epoch; thread
        ids are renumbered in first-seen order so a serial run exports
        identically every time."""
        with self._lock:
            spans = list(self._spans)
        tid_map: dict[int, int] = {}
        events = []
        for s in spans:
            tid = tid_map.setdefault(s.get("tid", 0), len(tid_map))
            args = {k: v for k, v in s["attrs"].items()}
            args["span_id"] = s["span_id"]
            if s["parent_id"] is not None:
                args["parent_id"] = s["parent_id"]
            events.append({
                "name": s["name"],
                "ph": "X",
                "ts": round((s["t0"] - self.t_epoch) * 1e6, 3),
                "dur": round(s["duration"] * 1e6, 3),
                "pid": 0,
                "tid": tid,
                "args": args,
            })
        events.sort(key=lambda e: (e["ts"], e["args"]["span_id"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def dump(self, path) -> Path:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
        return path


# ---------------------------------------------------------------------------
# the process-wide tracer slot (REPRO_TRACE)
# ---------------------------------------------------------------------------

_slot_lock = threading.Lock()
_slot: dict = {"tracer": None, "env_checked": False}

#: values of REPRO_TRACE that mean "disabled"
_OFF = ("", "0", "false", "no")
#: values that mean "enabled, in-memory only" (anything else is a dump path)
_ON = ("1", "true", "yes")


def trace_enabled_from_env() -> bool:
    """True when ``REPRO_TRACE`` asks for tracing (any non-off value)."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() not in _OFF


def trace_output_path() -> Optional[str]:
    """The Chrome-trace dump path when ``REPRO_TRACE`` names one.

    ``REPRO_TRACE=1`` traces in memory only; ``REPRO_TRACE=trace.json``
    (any value that is not a plain on/off token) additionally makes
    ``GraphService.close()`` / ``ShardedGraphService.close()`` dump the
    accumulated trace there.
    """
    raw = os.environ.get("REPRO_TRACE", "").strip()
    if raw.lower() in _OFF + _ON:
        return None
    return raw


def get_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled.

    This is THE hot-path guard: instrumentation sites call it once per
    operation and do nothing when it returns ``None``.  Lazily installs a
    tracer on first call when ``REPRO_TRACE`` is set (mirroring the
    kernel executor's ``REPRO_WORKERS`` idiom).
    """
    t = _slot["tracer"]
    if t is not None or _slot["env_checked"]:
        return t
    with _slot_lock:
        if not _slot["env_checked"]:
            _slot["env_checked"] = True
            if trace_enabled_from_env():
                _slot["tracer"] = Tracer()
        return _slot["tracer"]


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or with ``None``, disable) the process-wide tracer."""
    with _slot_lock:
        _slot["tracer"] = tracer
        _slot["env_checked"] = True


def span_if(tracer: Optional[Tracer], name: str, parent: Optional[Span] = None,
            **attrs):
    """``tracer.span(...)`` or a shared no-op context when tracing is off.

    The one-liner instrumentation sites use so the disabled path costs a
    single ``None`` check and no allocation.
    """
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, parent=parent, **attrs)


class _NullSpan:
    """Inert stand-in for :class:`Span` (shared instance, no state)."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()
