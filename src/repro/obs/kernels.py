"""Kernel profiling hooks: per-region work/wall/imbalance accounting.

The parallel kernel layer (:mod:`repro.graphblas._kernels.parallel`) runs
fork-join regions over a fork-once worker pool.  When a
:class:`KernelProfiler` is installed, every region records one
:class:`RegionRecord` -- which kernel (``mxm``/``structural``/``mxv``/
``reduce``/``freeze``), its estimated work (flops or nnz), how many row
blocks, the region wall time, and each block's *own* wall time.

The per-block timings are the interesting part: they expose block
imbalance (the slowest block gates the region -- Amdahl at the region
level), which is precisely the measurement the sharded GIL-regression
analysis lacked.  They are captured by wrapping the block function in a
picklable :class:`TimedBlock` *at dispatch time* -- the pool pickles the
function per region, so each forked worker times its blocks locally and
the timing rides back through the result pipe with the block result
("per-process buffers drained with block results").  Aggregation happens
at the region join, in the dispatching process; nothing else crosses the
fork boundary.

Enable with ``REPRO_PROFILE_KERNELS=1`` (lazily, same slot idiom as the
``REPRO_WORKERS`` executor) or :func:`set_kernel_profiler`.  Disabled --
the default -- the hook is one ``None`` check per region, off the block
hot path entirely.

>>> p = KernelProfiler()
>>> p.record_region("mxv", work=1000, blocks=4, wall_s=0.01,
...                 block_seconds=[0.002, 0.002, 0.002, 0.008])
>>> s = p.summary()["mxv"]
>>> s["regions"], s["blocks"], s["work"]
(1, 4, 1000)
>>> round(s["max_imbalance"], 2)  # slowest block / mean block
2.29
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

__all__ = [
    "KernelProfiler",
    "TimedBlock",
    "get_kernel_profiler",
    "set_kernel_profiler",
    "profile_enabled_from_env",
]


class TimedBlock:
    """Picklable wrapper timing one block call; returns ``(seconds, result)``.

    Wraps the block worker function at region-dispatch time.  The pool
    pickles it into each worker, so the timing happens in the process that
    runs the block and travels back with the result -- no shared state, no
    extra pipe traffic.
    """

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, chunk):
        t0 = time.perf_counter()
        out = self.fn(chunk)
        return (time.perf_counter() - t0, out)


class KernelProfiler:
    """Thread-safe per-kernel aggregation of fork-join region records."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kernels: dict[str, dict] = {}

    def record_region(self, kernel: str, work: int, blocks: int,
                      wall_s: float, block_seconds) -> None:
        """Fold one region into the per-kernel aggregate.

        ``block_seconds`` are the per-block wall times drained with the
        block results; imbalance is ``max(block) / mean(block)`` for the
        region (1.0 = perfectly balanced), and the aggregate keeps the
        worst region seen plus the block-time spread totals.
        """
        bs = [float(b) for b in block_seconds]
        imbalance = (max(bs) * len(bs) / sum(bs)) if bs and sum(bs) > 0 else 1.0
        with self._lock:
            agg = self._kernels.get(kernel)
            if agg is None:
                agg = self._kernels[kernel] = {
                    "regions": 0,
                    "work": 0,
                    "blocks": 0,
                    "wall_s": 0.0,
                    "block_s": 0.0,
                    "max_block_s": 0.0,
                    "max_imbalance": 1.0,
                }
            agg["regions"] += 1
            agg["work"] += int(work)
            agg["blocks"] += int(blocks)
            agg["wall_s"] += float(wall_s)
            agg["block_s"] += sum(bs)
            if bs:
                agg["max_block_s"] = max(agg["max_block_s"], max(bs))
            agg["max_imbalance"] = max(agg["max_imbalance"], imbalance)

    def summary(self) -> dict:
        """``{kernel: aggregate}`` sorted by kernel name, values rounded
        for JSON stability."""
        with self._lock:
            return {
                k: {
                    "regions": a["regions"],
                    "work": a["work"],
                    "blocks": a["blocks"],
                    "wall_s": round(a["wall_s"], 6),
                    "block_s": round(a["block_s"], 6),
                    "max_block_s": round(a["max_block_s"], 6),
                    "max_imbalance": round(a["max_imbalance"], 4),
                }
                for k, a in sorted(self._kernels.items())
            }

    def clear(self) -> None:
        with self._lock:
            self._kernels.clear()


# ---------------------------------------------------------------------------
# the process-wide profiler slot (REPRO_PROFILE_KERNELS)
# ---------------------------------------------------------------------------

_slot_lock = threading.Lock()
_slot: dict = {"profiler": None, "env_checked": False}

_OFF = ("", "0", "false", "no")


def profile_enabled_from_env() -> bool:
    """True when ``REPRO_PROFILE_KERNELS`` asks for kernel profiling."""
    return os.environ.get("REPRO_PROFILE_KERNELS", "").strip().lower() not in _OFF


def get_kernel_profiler() -> Optional[KernelProfiler]:
    """The installed profiler, or ``None`` when profiling is disabled.

    The region-level guard: :func:`~repro.graphblas._kernels.parallel.
    locked_map` calls this once per region and wraps nothing when it
    returns ``None``.
    """
    p = _slot["profiler"]
    if p is not None or _slot["env_checked"]:
        return p
    with _slot_lock:
        if not _slot["env_checked"]:
            _slot["env_checked"] = True
            if profile_enabled_from_env():
                _slot["profiler"] = KernelProfiler()
        return _slot["profiler"]


def set_kernel_profiler(profiler: Optional[KernelProfiler]) -> None:
    """Install (or with ``None``, disable) the process-wide profiler."""
    with _slot_lock:
        _slot["profiler"] = profiler
        _slot["env_checked"] = True
