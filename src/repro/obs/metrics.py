"""Typed metrics beyond latency: counters, gauges, histograms, exposition.

:class:`MetricsRegistry` is the serving layer's second telemetry pillar
(the first is the per-op latency accounting in
:mod:`repro.serving.metrics`, the third the span tracing in
:mod:`repro.obs.trace`): named, optionally labelled instruments recording
*what the system is doing* -- ingest queue depth, batch sizes, WAL bytes,
snapshot sizes, per-engine staleness, shard fan-out balance -- rather than
how long it took.

Three instrument families, mirroring the Prometheus data model:

* :class:`Counter` -- monotone total (``repro_wal_bytes_total``);
* :class:`Gauge`   -- last-set value (``repro_ingest_queue_depth``);
* :class:`Histogram` -- distribution summary with the same deterministic
  decimating reservoir as :class:`~repro.serving.metrics.LatencyStats`
  (no RNG; identical runs report identical percentiles).

Two read formats: :meth:`MetricsRegistry.snapshot` (a JSON-able dict,
merged into ``GraphService.stats()["metrics"]``) and
:func:`render_prometheus` (the ``text/plain; version=0.0.4`` exposition
format, served by ``GraphService.metrics_text()``).

>>> reg = MetricsRegistry()
>>> reg.counter("repro_wal_bytes_total").inc(128)
>>> reg.gauge("repro_ingest_queue_depth").set(3)
>>> reg.counter("repro_shard_changes_total", shard="0").inc(7)
>>> reg.snapshot()["repro_wal_bytes_total"]
128
>>> reg.snapshot()["repro_shard_changes_total"]
{'shard="0"': 7}
>>> print(render_prometheus(reg).splitlines()[1])
repro_ingest_queue_depth 3
"""

from __future__ import annotations

import re
import threading
from typing import Optional

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_expositions",
    "parse_exposition",
    "render_prometheus",
]


def _label_key(labels: dict) -> str:
    """Canonical label string: ``k1="v1",k2="v2"`` sorted by key ('' bare)."""
    if not labels:
        return ""
    return ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n


class Gauge:
    """A value that goes up and down; reads report the last set."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1) -> None:
        self.inc(-n)


class Histogram:
    """Streaming distribution summary (deterministic decimating reservoir).

    Same retention discipline as :class:`repro.serving.metrics
    .LatencyStats` -- exact count/total/min/max, percentile estimates over
    a bounded sample set decimated at a widening stride, no RNG -- but
    unit-agnostic (batch sizes, skew ratios, bytes).
    """

    __slots__ = ("_lock", "max_samples", "count", "total", "min", "max",
                 "_samples", "_stride", "_since_kept")

    def __init__(self, lock: threading.Lock, max_samples: int = 4096):
        self._lock = lock
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._since_kept = 0

    def observe(self, v: float) -> None:
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            self._since_kept += 1
            if self._since_kept >= self._stride:
                self._since_kept = 0
                self._samples.append(v)
                if len(self._samples) >= self.max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    def percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.total / self.count, 6) if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": round(self.percentile(50), 6),
            "p99": round(self.percentile(99), 6),
        }


class MetricsRegistry:
    """Named, labelled instruments with get-or-create access.

    ``counter(name, **labels)`` (and ``gauge``/``histogram``) returns the
    same instrument for the same (name, labels) pair, so hot paths may
    cache the returned object and skip the registry lookup entirely.  One
    registry lock covers creation *and* every instrument mutation -- the
    instruments share it, so a read through :meth:`snapshot` observes each
    value whole.
    """

    _FAMILIES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> (family, {label_key: instrument})
        self._metrics: dict[str, tuple[str, dict]] = {}

    def _get(self, family: str, name: str, labels: dict):
        key = _label_key(labels)
        with self._lock:
            entry = self._metrics.get(name)
            if entry is None:
                entry = self._metrics[name] = (family, {})
            elif entry[0] != family:
                raise ValueError(
                    f"metric {name!r} already registered as {entry[0]}, "
                    f"not {family}"
                )
            series = entry[1]
            inst = series.get(key)
            if inst is None:
                inst = series[key] = self._FAMILIES[family](self._lock)
            return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    # -- reads ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able view: ``{name: value | {label_key: value}}``.

        Counters/gauges report their value, histograms their
        :meth:`~Histogram.summary`; an unlabelled single series collapses
        to the bare value.
        """
        with self._lock:
            out: dict = {}
            for name, (family, series) in sorted(self._metrics.items()):
                rendered = {
                    key: inst.summary() if family == "histogram" else inst.value
                    for key, inst in sorted(series.items())
                }
                out[name] = rendered[""] if list(rendered) == [""] else rendered
            return out

    def families(self) -> dict[str, str]:
        """``{name: family}`` for every registered metric (exposition)."""
        with self._lock:
            return {name: fam for name, (fam, _) in sorted(self._metrics.items())}


def parse_exposition(text: str) -> dict:
    """Parse a Prometheus text exposition into its structured form.

    Returns ``{"types": {name: family}, "series": {(name, labels): value}}``
    where ``labels`` is the literal (already-canonical) label string
    between the braces, ``""`` for a bare series.  Strict on the
    invariants a scraper relies on: a malformed line, a ``# TYPE``
    redefinition to a *different* family, or a duplicate ``(name,
    labels)`` series raises ``ValueError``.  This is the round-trip
    oracle the multi-node exposition tests parse the merged gateway /
    router / replica output back through.
    """
    types: dict[str, str] = {}
    series: dict[tuple[str, str], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                name, family = parts[2], parts[3]
                if types.get(name, family) != family:
                    raise ValueError(
                        f"line {lineno}: metric {name!r} re-typed "
                        f"{types[name]!r} -> {family!r}"
                    )
                types[name] = family
            continue
        m = re.match(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})? (\S+)$", line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable series {line!r}")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        key = (name, labels)
        if key in series:
            raise ValueError(
                f"line {lineno}: duplicate series {name}{{{labels}}} -- "
                "label collision in a merged exposition"
            )
        series[key] = float(value)
    return {"types": types, "series": series}


def merge_expositions(parts) -> str:
    """Merge several text expositions into one valid exposition.

    Plain concatenation of per-node expositions repeats ``# TYPE`` lines
    for any metric two nodes both export, which the exposition format
    forbids.  This groups every part's series under a single ``# TYPE``
    line per metric (first-seen order), verifying along the way that no
    two parts disagree on a metric's family and -- via the same strict
    parse as :func:`parse_exposition` -- that no two parts collide on an
    identical ``(name, labels)`` series, which is what the ``shard=`` /
    ``node=`` base labels exist to prevent.
    """
    order: list[str] = []
    families: dict[str, str] = {}
    bodies: dict[str, list[str]] = {}
    seen: set[tuple[str, str]] = set()
    current: Optional[str] = None
    for part in parts:
        current = None
        for line in part.splitlines():
            if not line.strip():
                continue
            if line.startswith("# TYPE "):
                _, _, name, family = line.split(None, 3)
                if name not in families:
                    families[name] = family
                    order.append(name)
                    bodies[name] = []
                elif families[name] != family:
                    raise ValueError(
                        f"metric {name!r} exported as {families[name]!r} by "
                        f"one node and {family!r} by another"
                    )
                current = name
                continue
            m = re.match(r"^([A-Za-z_:][A-Za-z0-9_:]*)(?:\{(.*)\})? \S+$", line)
            if m is None:
                raise ValueError(f"unparseable series line {line!r}")
            key = (m.group(1), m.group(2) or "")
            if key in seen:
                raise ValueError(
                    f"label collision: series {key[0]}{{{key[1]}}} exported "
                    "by two nodes -- stamp distinct shard=/node= base labels"
                )
            seen.add(key)
            if current is None:
                # an untyped series (extras-style); give it its own group
                name = m.group(1)
                if name not in bodies:
                    families.setdefault(name, "untyped")
                    order.append(name)
                    bodies[name] = []
                bodies[name].append(line)
            else:
                bodies[current].append(line)
    lines: list[str] = []
    for name in order:
        lines.append(f"# TYPE {name} {families[name]}")
        lines.extend(bodies[name])
    return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(
    registry: MetricsRegistry,
    ops=None,
    extras: Optional[dict] = None,
    labels: Optional[dict] = None,
) -> str:
    """Prometheus text exposition of a registry (+ optional extras).

    ``ops`` is a :class:`repro.serving.metrics.OpMetrics`; its per-op
    latency reservoirs render as ``repro_op_latency_seconds`` summary
    series.  ``extras`` is a flat ``{metric_name: value}`` dict rendered
    as gauges (the serving layer feeds cache hit/miss totals through it).
    ``labels`` are appended to every series (the sharded router stamps
    ``shard="i"`` onto each shard's exposition).
    """
    base = dict(labels or {})

    def series(name: str, label_key: str, value) -> str:
        parts = [k for k in (label_key, _label_key(base)) if k]
        lab = ("{" + ",".join(parts) + "}") if parts else ""
        return f"{name}{lab} {value}"

    lines: list[str] = []
    with registry._lock:
        metrics = {
            name: (fam, {k: i for k, i in sorted(ser.items())})
            for name, (fam, ser) in sorted(registry._metrics.items())
        }
    for name, (family, ser) in metrics.items():
        lines.append(f"# TYPE {name} {'summary' if family == 'histogram' else family}")
        for key, inst in ser.items():
            if family == "histogram":
                s = inst.summary()
                for q in ("50", "99"):
                    qkey = key + ("," if key else "") + f'quantile="0.{q}"'
                    lines.append(series(name, qkey, s[f"p{q}"]))
                lines.append(series(name + "_sum", key, s["sum"]))
                lines.append(series(name + "_count", key, s["count"]))
            else:
                lines.append(series(name, key, inst.value))
    for name, value in sorted((extras or {}).items()):
        lines.append(f"# TYPE {name} gauge")
        lines.append(series(name, "", value))
    if ops is not None:
        name = "repro_op_latency_seconds"
        lines.append(f"# TYPE {name} summary")
        for op, s in ops.summary().items():
            key = f'op="{op}"'
            lines.append(series(name, key + ',quantile="0.5"', s["p50_ms"] / 1e3))
            lines.append(series(name, key + ',quantile="0.99"', s["p99_ms"] / 1e3))
            lines.append(series(name + "_sum", key, s["total_s"]))
            lines.append(series(name + "_count", key, s["count"]))
    return "\n".join(lines) + "\n"
