"""repro.obs -- the unified observability subsystem.

Three pillars threaded through every layer of the stack (DESIGN.md
"Observability" has the span taxonomy and metric catalogue):

* :mod:`repro.obs.trace` -- deterministic span tracing of one micro-batch
  end-to-end (``submit -> wal -> scatter -> shard -> refresh -> commit ->
  query``), exportable as Chrome trace-event JSON (``REPRO_TRACE``);
* :mod:`repro.obs.metrics` -- typed counters/gauges/histograms
  (:class:`MetricsRegistry`) with Prometheus text exposition, merged into
  ``GraphService.stats()`` / ``ShardedGraphService.stats()``;
* :mod:`repro.obs.kernels` -- per-kernel work/wall/imbalance profiling of
  fork-join regions, surviving the fork-once worker pool
  (``REPRO_PROFILE_KERNELS``).

Everything is disabled-by-default cheap: the tracer and profiler slots
hold ``None`` until an env knob or an explicit ``set_*`` installs one,
and every instrumentation site guards on that single lookup.
"""

from repro.obs.kernels import (
    KernelProfiler,
    get_kernel_profiler,
    set_kernel_profiler,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.trace import (
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracer,
    span_if,
    trace_enabled_from_env,
    trace_output_path,
)

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "get_tracer",
    "set_tracer",
    "span_if",
    "trace_enabled_from_env",
    "trace_output_path",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "KernelProfiler",
    "get_kernel_profiler",
    "set_kernel_profiler",
]
