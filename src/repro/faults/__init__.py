"""Deterministic fault injection: named crash points, explicit schedules.

The robustness suites (sharded recovery, replica failover) need to kill a
service at precisely chosen moments -- after the WAL frame is committed
but before the graph mutates, between a snapshot's file writes and its
atomic rename, mid-ship between leader and replica.  Monkeypatching those
sites per test scatters the knowledge of *where a process can die* across
the test tree and drifts as the code moves.  This module centralises it:

* production code marks each killable site **once** with
  :func:`fire`(``point``, **context), after registering the point name at
  import time with :func:`register_crash_point`;
* tests drive a :class:`FaultPlan` -- an explicit, deterministic schedule
  ("crash on the 2nd hit of ``wal-append`` under ``shard-01``") installed
  via :func:`inject`.  There is **no randomness**: a plan either names a
  hit and fires exactly there, or stays silent.

With no plan installed, :func:`fire` is one global read -- the sites are
free in production, same discipline as the null-span fast path in
:mod:`repro.obs.trace`.

>>> import repro.serving.persistence  # registers the persistence points
>>> "wal-append" in crash_points()
True
>>> plan = FaultPlan().crash("wal-append", hit=2)
>>> with inject(plan):
...     fire("wal-append", path="a")          # hit 1: survives
...     fire("wal-append", path="b")          # hit 2: crashes
Traceback (most recent call last):
    ...
repro.faults.InjectedCrash: injected crash at 'wal-append' (hit 2)
>>> [hit[0] for hit in plan.hits]
['wal-append', 'wal-append']
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Optional

from repro.util.validation import ReproError

__all__ = [
    "FaultPlan",
    "InjectedCrash",
    "active_plan",
    "at_path",
    "crash_points",
    "fire",
    "inject",
    "register_crash_point",
    "set_active_plan",
]


class InjectedCrash(Exception):
    """A deliberate, scheduled failure raised at a crash point.

    Deliberately *not* a :class:`~repro.util.validation.ReproError`:
    recovery/rollback code that treats ReproError as a validation verdict
    must see an injected crash as what it simulates -- an arbitrary
    process death.
    """

    def __init__(self, point: str, hit: int, ctx: Optional[dict] = None):
        super().__init__(f"injected crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit
        self.ctx = dict(ctx or {})

    def __reduce__(self):
        # Exception's default reduce replays only ``args`` (the formatted
        # message), which breaks the 3-argument constructor when a crash
        # raised inside a shard worker is pickled back over the RPC pipe.
        return (type(self), (self.point, self.hit, self.ctx))


#: name -> human description of where the point sits (import-time filled)
_REGISTRY: dict[str, str] = {}
_LOCK = threading.Lock()
_ACTIVE: Optional["FaultPlan"] = None


def register_crash_point(name: str, description: str) -> str:
    """Declare a named crash point (call at the owning module's import).

    Registration is idempotent for an identical description; re-registering
    a name with a *different* description is a collision and raises --
    every crash site must have exactly one owner.
    """
    with _LOCK:
        known = _REGISTRY.get(name)
        if known is not None and known != description:
            raise ReproError(
                f"crash point {name!r} already registered as {known!r}"
            )
        _REGISTRY[name] = description
    return name


def crash_points() -> dict[str, str]:
    """All registered crash points: ``{name: description}`` (a copy)."""
    with _LOCK:
        return dict(_REGISTRY)


def fire(point: str, **ctx) -> None:
    """Mark a killable site; crashes here iff the installed plan says so.

    ``ctx`` is whatever the site knows that a schedule might match on --
    by convention at least ``path`` (the artefact being touched) so plans
    can target one shard/node among many.  No-op (one global read) when
    no plan is installed.
    """
    plan = _ACTIVE
    if plan is not None:
        plan._fire(point, ctx)


def active_plan() -> Optional["FaultPlan"]:
    """The currently installed plan, or ``None``.

    Process-boundary hook: a shard handle reads this before each RPC so
    it can ship the schedule into its worker (see
    :mod:`repro.sharding.handle`).  Tests keep using :func:`inject`.
    """
    return _ACTIVE


def set_active_plan(plan: Optional["FaultPlan"]) -> None:
    """Install ``plan`` unconditionally (``None`` clears).

    The worker-process counterpart of :func:`inject`: a shard worker
    replaces its inherited/previous plan with whatever the router just
    shipped, without the no-nesting check -- inside the worker there is
    no enclosing ``inject`` block to collide with.
    """
    global _ACTIVE
    with _LOCK:
        _ACTIVE = plan


@contextmanager
def inject(plan: "FaultPlan"):
    """Install ``plan`` process-wide for the duration of the block.

    Plans do not nest: the whole value of the framework is that exactly
    one explicit schedule is in force, so a second install raises.
    """
    global _ACTIVE
    with _LOCK:
        if _ACTIVE is not None:
            raise ReproError("a FaultPlan is already installed")
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _LOCK:
            _ACTIVE = None


class _PathMatcher:
    """Picklable callable behind :func:`at_path` (a lambda would not ship
    into shard worker processes with the plan that holds it)."""

    __slots__ = ("fragment",)

    def __init__(self, fragment: str):
        self.fragment = fragment

    def __call__(self, ctx: dict) -> bool:
        return self.fragment in str(ctx.get("path", ""))

    def __getstate__(self):
        return self.fragment

    def __setstate__(self, state):
        self.fragment = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"at_path({self.fragment!r})"


def at_path(fragment: str) -> Callable[[dict], bool]:
    """Matcher factory: hit only when ``fragment`` is in the site's path.

    The standard way to aim a plan at one shard or replication node --
    their data directories are named (``shard-01``, ``node-02``), and
    every IO-adjacent site passes ``path=``.  The returned matcher is
    picklable, so a plan using it can cross a process boundary.
    """
    return _PathMatcher(fragment)


class _Trigger:
    __slots__ = ("point", "hit", "match", "exc", "seen", "fired")

    def __init__(self, point, hit, match, exc):
        self.point = point
        self.hit = hit
        self.match = match
        self.exc = exc
        self.seen = 0
        self.fired = False


class FaultPlan:
    """An explicit crash schedule over registered crash points.

    Build with chained :meth:`crash` calls, install with :func:`inject`.
    Every :func:`fire` the plan observes is appended to :attr:`hits` as
    ``(point, ctx)`` -- run a workload under an *empty* plan first to
    discover, deterministically, which points fire and how often, then
    schedule crashes at exact hit indices (the failover property suite
    does exactly this).
    """

    def __init__(self) -> None:
        self._triggers: list[_Trigger] = []
        self._lock = threading.Lock()
        #: every observed (point, ctx) in arrival order
        self.hits: list[tuple[str, dict]] = []

    def crash(
        self,
        point: str,
        *,
        hit: int = 1,
        match: Optional[Callable[[dict], bool]] = None,
        exc: type = InjectedCrash,
    ) -> "FaultPlan":
        """Schedule a crash on the ``hit``-th matching fire of ``point``.

        ``match`` filters on the site's context dict (see :func:`at_path`);
        hits are counted per trigger over *matching* fires only.  ``exc``
        lets a schedule simulate a specific failure class (``OSError`` for
        a dying disk); non-:class:`InjectedCrash` types are constructed
        with a descriptive message.  Returns ``self`` for chaining.
        """
        if point not in crash_points():
            raise ReproError(
                f"unknown crash point {point!r}; registered: "
                f"{sorted(crash_points())}"
            )
        if hit < 1:
            raise ReproError(f"hit must be >= 1, got {hit}")
        self._triggers.append(_Trigger(point, hit, match, exc))
        return self

    def fired(self) -> list[str]:
        """Points whose scheduled crash has been raised (in schedule order)."""
        return [t.point for t in self._triggers if t.fired]

    # -- process boundary ----------------------------------------------
    #
    # A shard worker runs against a pickled *copy* of the plan; the copy
    # accumulates hits/fired state that the test asserts on via the
    # original.  The handle drains deltas out of the worker after every
    # RPC (``events_since``) and folds them back into the router-side
    # plan (``absorb``), so aimed schedules (one ``at_path`` trigger per
    # shard directory) behave identically across backends.  The one
    # documented divergence: an *unaimed* trigger counts hits
    # per-process under the process backend, not globally.

    def __getstate__(self):
        # snapshot under the lock into fresh objects: a scatter thread may
        # be absorbing a sibling worker's events while this copy is being
        # pickled for the next worker
        with self._lock:
            triggers = []
            for t in self._triggers:
                c = _Trigger(t.point, t.hit, t.match, t.exc)
                c.seen = t.seen
                c.fired = t.fired
                triggers.append(c)
            return {
                "_triggers": triggers,
                "hits": [(point, dict(ctx)) for point, ctx in self.hits],
            }

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def events_since(self, n_hits: int) -> tuple[list, list]:
        """Delta view for shipping back over RPC: hits past ``n_hits``
        plus the full per-trigger ``(seen, fired)`` state."""
        with self._lock:
            return (
                list(self.hits[n_hits:]),
                [(t.seen, t.fired) for t in self._triggers],
            )

    def absorb(self, new_hits: list, trigger_state: list) -> None:
        """Fold a worker copy's :meth:`events_since` delta into this plan."""
        with self._lock:
            self.hits.extend((point, dict(ctx)) for point, ctx in new_hits)
            for trig, (seen, fired) in zip(self._triggers, trigger_state):
                trig.seen = max(trig.seen, seen)
                trig.fired = trig.fired or fired

    # ------------------------------------------------------------------

    def _fire(self, point: str, ctx: dict) -> None:
        boom = None
        with self._lock:
            self.hits.append((point, ctx))
            for trig in self._triggers:
                if trig.point != point or trig.fired:
                    continue
                if trig.match is not None and not trig.match(ctx):
                    continue
                trig.seen += 1
                if trig.seen == trig.hit:
                    trig.fired = True
                    boom = trig
                    break
        if boom is not None:
            if issubclass(boom.exc, InjectedCrash):
                raise boom.exc(point, boom.hit, ctx)
            raise boom.exc(f"injected crash at {point!r} (hit {boom.hit})")
