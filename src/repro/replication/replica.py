"""Replica: a read-only follower of a leader's WAL, promotable on failover.

A replica is a full :class:`~repro.serving.service.GraphService` -- same
engines, same versioned cache, same WAL + snapshot directory of its own --
whose *only* writer is the leader's shipped change log.  It bootstraps
from the leader's newest snapshot, then tails committed frames through a
:class:`~repro.replication.WalShipper`, applying each through the ordinary
``apply_batch`` path, so every read it serves carries the same monotone
``computed_version`` staleness tag as a leader read (plus a ``source``
tag naming the replica).

Epoch discipline (leadership fencing):

* every shipped frame carries the epoch it was committed under;
* a frame with an epoch **below** what the replica has already seen is a
  zombie leader's write and raises :class:`~repro.serving.persistence
  .FencedError` -- it must never be applied;
* a frame with a **higher** epoch announces a completed failover: the
  replica adopts it and stamps its own WAL with it, so its durable log
  records the regime change.

:meth:`promote` turns the replica into a leader: it fences the old
leader's directory *first* (any still-running old leader fail-stops on
its next append), drains the residual committed frames, then adopts the
new epoch.  The replica's own data directory -- snapshot plus a WAL of
everything it applied -- is already a valid shipping source, so surviving
replicas just retarget at it.
"""

from __future__ import annotations

import shutil
from dataclasses import replace
from pathlib import Path
from typing import Optional

from repro.faults import fire as _fire_fault
from repro.faults import register_crash_point
from repro.model.changes import ChangeSet
from repro.obs.trace import get_tracer, span_if
from repro.serving.cache import CachedResult
from repro.serving.persistence import FencedError, write_fence
from repro.serving.service import GraphService
from repro.util.validation import ReproError

__all__ = ["Replica"]

CRASH_PROMOTE = register_crash_point(
    "promote",
    "Replica.promote, at entry, before the old leader's directory is fenced",
)


class _ShipGap(ReproError):
    """The source's WAL starts past this replica's version (re-seed needed)."""


class Replica:
    """One WAL-tailing follower; serves reads, can be promoted to lead.

    ``service_kwargs`` must name the same engine configuration as the
    leader (a replica computing different tools would not be a replica).
    The replica's ``data_dir`` is a rebuildable cache: bootstrap wipes and
    re-seeds it, which is also how a replica recovers from falling behind
    a source whose history no longer reaches back to it.
    """

    def __init__(self, shipper, *, data_dir, name: Optional[str] = None,
                 **service_kwargs):
        self.shipper = shipper
        self.data_dir = Path(data_dir)
        self.name = name if name is not None else self.data_dir.name
        # a replica never generates writes, so it never needs a flusher
        service_kwargs.pop("auto_flush", None)
        self._service_kwargs = dict(service_kwargs)
        self.epoch = 0
        self.service: Optional[GraphService] = None
        self._bootstrap()

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------

    def _bootstrap(self) -> None:
        """(Re-)seed from the source's newest snapshot.

        Destructive on purpose: the replica's directory holds no state
        that is not derivable from the leader's, so wiping it is always
        safe and makes re-seeding idempotent.
        """
        if self.service is not None:
            self.service.close()
            self.service = None
        if self.data_dir.exists():
            shutil.rmtree(self.data_dir)
        version, graph, epoch = self.shipper.bootstrap()
        service = GraphService(
            graph,
            data_dir=self.data_dir,
            _start_version=version,
            **self._service_kwargs,
        )
        self.epoch = max(self.epoch, epoch)
        service._wal.epoch = self.epoch
        self.service = service

    @property
    def version(self) -> int:
        """Last applied (leader) version this replica reflects."""
        return self.service.version

    # ------------------------------------------------------------------
    # tailing
    # ------------------------------------------------------------------

    def apply_frame(self, version: int, batch: ChangeSet, epoch: int) -> bool:
        """Apply one shipped frame; returns False for an already-applied one.

        The no-op on ``version <= self.version`` is what makes catch-up
        races harmless: re-polling a window that was already applied
        (including removal frames) changes nothing -- the idempotence
        property ``tests/replication/test_replay_idempotent.py`` pins.
        """
        if epoch < self.epoch:
            raise FencedError(
                f"replica {self.name}: frame v{version} carries stale epoch "
                f"{epoch} < {self.epoch}; a fenced zombie leader wrote it"
            )
        if epoch > self.epoch:
            # a completed failover, announced in-band
            self.epoch = epoch
            self.service._wal.epoch = epoch
        if version <= self.service.version:
            return False
        if version != self.service.version + 1:
            raise _ShipGap(
                f"replica {self.name} at v{self.service.version} cannot apply "
                f"v{version}: the source's log no longer reaches back"
            )
        self.service.apply_batch(list(batch))
        return True

    def catch_up(self) -> int:
        """Apply every committed frame the source has past our version.

        Returns the number of frames applied.  A gap (the source's WAL
        starts beyond us -- typically right after retargeting to a
        freshly-promoted leader) triggers one destructive re-seed from
        the source's snapshot before retrying.
        """
        with span_if(get_tracer(), "catch_up", replica=self.name) as sp:
            applied = self._drain()
            if applied is None:
                self._bootstrap()
                applied = self._drain()
                if applied is None:
                    raise ReproError(
                        f"replica {self.name}: WAL gap persists after "
                        f"re-bootstrap from {self.shipper.source}"
                    )
            sp.set(applied=applied, version=self.version)
        return applied

    def _drain(self) -> Optional[int]:
        """One poll-and-apply sweep; None signals a gap."""
        applied = 0
        for version, batch, epoch in self.shipper.poll(self.version):
            try:
                if self.apply_frame(version, batch, epoch):
                    applied += 1
            except _ShipGap:
                return None
        return applied

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def query(self, query: str, tool: Optional[str] = None) -> CachedResult:
        """The replica's cached result, tagged with this replica's name.

        Staleness is two-dimensional here: ``result.version`` is the
        leader version this replica had applied when it served (its
        replication lag shows as ``leader.version - result.version``),
        and ``result.staleness`` is the ordinary dirty-engine tag within
        that version.  Both are monotone.
        """
        return replace(self.service.query(query, tool), source=self.name)

    def stats(self) -> dict:
        inner = self.service.stats()
        inner["replica"] = {"name": self.name, "epoch": self.epoch,
                            "source": str(self.shipper.source)}
        return inner

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def promote(self, epoch: int) -> GraphService:
        """Become the leader under ``epoch``; returns the inner service.

        Order matters and is the whole safety argument:

        1. **fence** the old leader's directory at ``epoch`` -- from this
           instant a surviving old leader raises ``FencedError`` on its
           next append and fail-stops, so the committed history can no
           longer grow behind our back;
        2. **drain** the residual committed frames (everything the old
           leader fsynced before dying is applied here -- no committed
           write is lost);
        3. **adopt** ``epoch``: our own WAL now stamps it on every frame
           and our own directory is fenced at it, making us as
           depose-able as the leader we replaced.

        A crash *during* promote is safe to retry: fencing is idempotent
        per epoch and the drain is a no-op the second time.
        """
        if epoch <= self.epoch:
            raise ReproError(
                f"promotion epoch {epoch} must exceed the replica's "
                f"current epoch {self.epoch}"
            )
        with span_if(get_tracer(), "promote", replica=self.name,
                     epoch=epoch) as sp:
            _fire_fault(CRASH_PROMOTE, path=str(self.data_dir), epoch=epoch)
            self.shipper.fence(epoch)
            self.catch_up()
            self.epoch = epoch
            self.service._wal.epoch = epoch
            write_fence(self.data_dir, epoch)
            sp.set(version=self.version)
        return self.service

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        if self.service is not None:
            self.service.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Replica<{self.name}, v{self.version}, epoch={self.epoch}, "
            f"source={self.shipper.source}>"
        )
