"""repro.replication -- WAL-shipping read replicas with leader failover.

The fault-tolerance / read-scaling layer over :mod:`repro.serving`
(ROADMAP: "WAL-shipping read replicas"):

:class:`DirectoryWalShipper` (seam: :class:`WalShipper`)
    How a replica reads the leader -- snapshot bootstrap plus committed
    ``(version, batch, epoch)`` WAL frames.  Directory-based today,
    socket-shaped by design.

:class:`Replica`
    A full GraphService that only the shipped WAL writes: bounded-lag
    reads with monotone staleness tags, ``catch_up()`` tailing,
    ``promote(epoch)`` failover (fence -> drain -> adopt).

:class:`ReplicatedGraphService`
    The front: writes to the leader, bounded-staleness round-robin reads
    across replicas with per-replica timeout + capped exponential
    backoff, graceful degradation to the leader, ``promote()`` leader
    election with epoch fencing (a zombie leader's appends raise
    :class:`~repro.serving.persistence.FencedError`).

Composes with :mod:`repro.sharding`: ``ShardedGraphService(replicas=R)``
turns each shard into a K×R fleet.  The killable moments are
:mod:`repro.faults` crash points (``wal-append``,
``post-append-pre-apply``, ``snapshot-write``, ``ship``, ``promote``) --
``tests/replication/test_failover_property.py`` kills the leader at every
one of them and proves no committed write is lost.
"""

from repro.replication.replica import Replica
from repro.replication.service import ReplicatedGraphService, default_replicas
from repro.replication.shipper import DirectoryWalShipper, WalShipper

__all__ = [
    "DirectoryWalShipper",
    "Replica",
    "ReplicatedGraphService",
    "WalShipper",
    "default_replicas",
]
