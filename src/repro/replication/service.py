"""ReplicatedGraphService: one leader, R WAL-tailing replicas, one front.

The read-scaling / fault-tolerance axis of the serving north star
(ROADMAP: "WAL-shipping read replicas").  The front owns a fleet of
``R + 1`` node directories under one ``data_dir``::

    data_dir/
      replication.json      # {schema, nodes, leader, epoch}
      node-00/              # the initial leader: WAL + snapshots
      node-01/ .. node-0R/  # replicas: rebuildable caches of node-00

writes
    Delegated to the leader :class:`~repro.serving.service.GraphService`
    unchanged -- same micro-batching, validation, WAL-before-apply
    durability.  Replicas see a write once its frame is committed
    (fsynced) in the leader's WAL; pending micro-batches are invisible to
    them, exactly as they are to leader reads.

reads
    :meth:`query` prefers replicas, round-robin, under a **bounded
    staleness** contract: a replica must sit within ``max_staleness``
    versions of the leader (catching up on demand through its shipper)
    and never below any version this front has already served (session
    monotonicity), so staleness tags stay monotone across replica
    switches.  A replica that errors or exceeds ``read_timeout_s`` goes
    into capped exponential backoff (``backoff_base_s`` doubling up to
    ``backoff_cap_s``, clocked by the patchable
    :class:`~repro.util.timer.WallClock`); with every replica down the
    front degrades gracefully to the leader.

failover
    :meth:`promote` elects the most-caught-up replica (or the one you
    name), fences the old leader's directory under ``epoch + 1``, drains
    the residual committed WAL into the new leader, and retargets the
    surviving replicas at it.  The old leader is *not* closed -- a
    network-partitioned zombie cannot be closed -- it is simply fenced:
    its next append raises :class:`~repro.serving.persistence.FencedError`
    and fail-stops it (``tests/replication/test_replicated_service.py`` keeps one
    alive on purpose to prove the rejection).

Telemetry: ``repro_replication_lag`` (gauge, per replica),
``repro_replica_reads_total`` / ``repro_replica_errors_total`` (counters,
per replica) and ``repro_leader_read_fallbacks_total`` live in the
front's registry, surfaced through ``stats()["metrics"]`` and
:meth:`metrics_text`.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.model.changes import Change, ChangeSet
from repro.model.graph import SocialGraph
from repro.obs.metrics import MetricsRegistry, merge_expositions, render_prometheus
from repro.replication.replica import Replica
from repro.replication.shipper import DirectoryWalShipper
from repro.serving.cache import CachedResult
from repro.serving.service import GraphService
from repro.util.timer import WallClock
from repro.util.validation import DeadlineExceeded, ReproError

__all__ = ["ReplicatedGraphService", "default_replicas"]

_META_FILE = "replication.json"
_META_SCHEMA = 1

#: front-level knobs that must not leak into GraphService kwargs
_FRONT_KEYS = ("max_staleness", "read_timeout_s", "backoff_base_s",
               "backoff_cap_s")


def default_replicas() -> int:
    """Replica count from the ``REPRO_REPLICAS`` environment knob (default 1)."""
    try:
        n = int(os.environ.get("REPRO_REPLICAS", "1"))
    except ValueError as exc:
        raise ReproError(f"bad REPRO_REPLICAS: {exc}") from None
    if n < 0:
        raise ReproError(f"REPRO_REPLICAS must be >= 0, got {n}")
    return n


class ReplicatedGraphService:
    """Leader + replica fleet behind one service facade.

    Constructor arguments mirror :class:`~repro.serving.service
    .GraphService` (they configure the leader and every replica
    identically) plus the replication knobs: ``replicas`` (defaulting to
    the ``REPRO_REPLICAS`` environment knob; 0 is a leader-only
    degenerate fleet), ``max_staleness`` (versions a replica read may
    trail the leader; 0 = read-your-writes), ``read_timeout_s`` and the
    backoff pair.

    >>> import tempfile
    >>> from repro.model.changes import AddFriendship, AddUser
    >>> svc = ReplicatedGraphService(replicas=1, data_dir=tempfile.mkdtemp(),
    ...                              tools=("graphblas-incremental",),
    ...                              max_batch=1)
    >>> svc.submit([AddUser(1), AddUser(2)])
    1
    >>> svc.submit(AddFriendship(1, 2))
    2
    >>> r = svc.query("Q1")          # served by the replica, fully caught up
    >>> (r.version, r.source)
    (2, 'node-01')
    >>> svc.stats()["replicas"]["node-01"]["lag"]
    0
    >>> svc.close()
    """

    def __init__(
        self,
        graph: Optional[SocialGraph] = None,
        *,
        replicas: Optional[int] = None,
        data_dir,
        max_staleness: int = 0,
        read_timeout_s: float = 1.0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 5.0,
        _leader: Optional[GraphService] = None,
        _leader_index: int = 0,
        _epoch: int = 0,
        **service_kwargs,
    ):
        if replicas is None:
            replicas = default_replicas()
        if replicas < 0:
            raise ReproError(f"replicas must be >= 0, got {replicas}")
        if max_staleness < 0:
            raise ReproError(f"max_staleness must be >= 0, got {max_staleness}")
        self.data_dir = Path(data_dir)
        self.max_staleness = max_staleness
        self.read_timeout_s = read_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.epoch = _epoch
        self._nodes = replicas + 1
        self._leader_index = _leader_index
        self._service_kwargs = dict(service_kwargs)

        self._lock = threading.RLock()
        self.registry = MetricsRegistry()
        self._closed = False
        #: deposed leaders, kept un-closed on purpose (zombie semantics);
        #: reaped at :meth:`close`
        self._deposed: list[GraphService] = []
        self._rr = 0
        #: session-monotonicity floor: no read is ever served below it
        self._floor = 0
        self._backoff: dict[str, dict] = {}

        leader_dir = self.data_dir / f"node-{_leader_index:02d}"
        if _leader is not None:
            self._leader = _leader  # the recover() path
        else:
            if (self.data_dir / _META_FILE).exists():
                raise ReproError(
                    f"{self.data_dir} already holds replicated service state; "
                    "use ReplicatedGraphService.recover(data_dir) to resume it"
                )
            self._leader = GraphService(graph, data_dir=leader_dir,
                                        **service_kwargs)
        self._leader_dir = leader_dir

        self._replicas: list[Replica] = []
        try:
            for i in range(self._nodes):
                if i == _leader_index:
                    continue
                self._replicas.append(
                    Replica(
                        DirectoryWalShipper(leader_dir),
                        data_dir=self.data_dir / f"node-{i:02d}",
                        **service_kwargs,
                    )
                )
        except BaseException:
            for rep in self._replicas:
                rep.close()
            self._leader.close()
            raise
        self._write_meta()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, data_dir, **kwargs) -> "ReplicatedGraphService":
        """Rebuild a replicated service from its data directory.

        The leader node recovers exactly like an unreplicated
        :meth:`GraphService.recover` (newest snapshot + committed WAL
        tail, under the persisted epoch); replicas are rebuildable caches
        and are simply re-seeded from the recovered leader.  ``replicas``
        is read back from ``replication.json`` and must not be changed
        across a recovery.
        """
        data_dir = Path(data_dir)
        meta_path = data_dir / _META_FILE
        if not meta_path.exists():
            raise ReproError(f"no replicated service state in {data_dir}")
        with open(meta_path) as fh:
            meta = json.load(fh)
        if meta.get("schema") != _META_SCHEMA:
            raise ReproError(
                f"replication meta schema {meta.get('schema')} != {_META_SCHEMA}"
            )
        nodes = int(meta["nodes"])
        leader_index = int(meta["leader"])
        epoch = int(meta["epoch"])
        asked = kwargs.pop("replicas", None)
        if asked is not None and asked != nodes - 1:
            raise ReproError(
                f"cannot recover with replicas={asked}: {data_dir} was laid "
                f"out with {nodes - 1} (resizing the fleet is a rebuild)"
            )
        front = {k: kwargs.pop(k) for k in list(kwargs) if k in _FRONT_KEYS}
        leader = GraphService.recover(
            data_dir / f"node-{leader_index:02d}", **kwargs
        )
        leader._wal.epoch = epoch
        return cls(
            replicas=nodes - 1,
            data_dir=data_dir,
            _leader=leader,
            _leader_index=leader_index,
            _epoch=epoch,
            **front,
            **kwargs,
        )

    def _write_meta(self) -> None:
        tmp = self.data_dir / (_META_FILE + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(
                {"schema": _META_SCHEMA, "nodes": self._nodes,
                 "leader": self._leader_index, "epoch": self.epoch},
                fh,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(tmp, self.data_dir / _META_FILE)

    # ------------------------------------------------------------------
    # writes (leader-routed)
    # ------------------------------------------------------------------

    def submit(self, changes: Union[Change, ChangeSet, Iterable[Change]]) -> int:
        """Enqueue change(s) on the leader; returns its applied version."""
        with self._lock:
            self._check_open()
            return self._leader.submit(changes)

    def apply_batch(self, changes: Union[Change, ChangeSet, Iterable[Change]]) -> int:
        """Apply one pre-coalesced batch on the leader (the sharded
        router's scatter target when shards are replicated fleets)."""
        with self._lock:
            self._check_open()
            return self._leader.apply_batch(changes)

    def flush(self) -> int:
        """Apply everything pending on the leader now."""
        with self._lock:
            self._check_open()
            return self._leader.flush()

    @property
    def version(self) -> int:
        """The leader's applied version (the fleet's write frontier)."""
        return self._leader.version

    @property
    def graph(self) -> SocialGraph:
        """The leader's graph (routing/adoption hooks read it)."""
        return self._leader.graph

    # ------------------------------------------------------------------
    # reads (replica-preferred, bounded staleness)
    # ------------------------------------------------------------------

    def query(
        self,
        query: str,
        tool: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> CachedResult:
        """A cached result within ``max_staleness`` of the leader.

        Round-robins the replicas, skipping any in backoff; the chosen
        replica catches up through its shipper when it trails the
        staleness bound or the session floor.  Failures and over-timeout
        reads push the replica into capped exponential backoff and the
        next candidate is tried; when none can serve, the read degrades
        to the leader (counted in ``repro_leader_read_fallbacks_total``).

        ``deadline`` is an *absolute* WallClock instant bounding the whole
        read, retries included: each attempt's effective timeout is
        ``min(read_timeout_s, deadline - now)`` so per-attempt timeouts
        cannot compound past the caller's budget, no further attempt
        starts once the budget is spent, and an exhausted budget raises
        :class:`~repro.util.validation.DeadlineExceeded` instead of
        falling back to the leader.  An attempt that failed only because
        the *deadline* squeezed its timeout below ``read_timeout_s`` does
        not push that replica into backoff -- the replica was not slow,
        the caller was in a hurry.
        """
        with self._lock:
            self._check_open()
            leader = self._leader
            leader_ok = not (leader._failed or leader._closed)
            if deadline is not None and WallClock.now() >= deadline:
                raise DeadlineExceeded(
                    f"replicated read of {query!r} abandoned: deadline "
                    "passed before any attempt"
                )
            if leader_ok and leader._batcher.due():
                leader.flush()
            target = leader.version
            floor = max(self._floor, target - self.max_staleness)
            n = len(self._replicas)
            order = [(self._rr + j) % n for j in range(n)] if n else []
            if n:
                self._rr = (self._rr + 1) % n
            for idx in order:
                rep = self._replicas[idx]
                state = self._backoff.setdefault(
                    rep.name, {"failures": 0, "retry_at": 0.0}
                )
                now = WallClock.now()
                if deadline is not None and now >= deadline:
                    raise DeadlineExceeded(
                        f"replicated read of {query!r} abandoned: budget "
                        "exhausted mid-retry, no leader fallback past deadline"
                    )
                if state["retry_at"] > now:
                    continue
                timeout = self.read_timeout_s
                if deadline is not None:
                    timeout = min(timeout, deadline - now)
                t0 = now
                deadline_squeezed = False
                try:
                    if rep.version < floor:
                        rep.catch_up()
                    if rep.version < floor:
                        raise ReproError(
                            f"replica {rep.name} still at v{rep.version} < "
                            f"v{floor} after catch-up"
                        )
                    result = rep.query(query, tool)
                    elapsed = WallClock.now() - t0
                    if elapsed > timeout:
                        deadline_squeezed = elapsed <= self.read_timeout_s
                        raise ReproError(
                            f"replica {rep.name} read took {elapsed:.3f}s > "
                            f"effective timeout {timeout:.3f}s"
                        )
                except Exception:
                    if not deadline_squeezed:
                        state["failures"] += 1
                        state["retry_at"] = WallClock.now() + min(
                            self.backoff_base_s * 2 ** (state["failures"] - 1),
                            self.backoff_cap_s,
                        )
                        self.registry.counter(
                            "repro_replica_errors_total", replica=rep.name
                        ).inc()
                    continue
                state["failures"] = 0
                state["retry_at"] = 0.0
                self.registry.counter(
                    "repro_replica_reads_total", replica=rep.name
                ).inc()
                self.registry.gauge(
                    "repro_replication_lag", replica=rep.name
                ).set(target - rep.version)
                self._floor = max(self._floor, result.version)
                return result
            # graceful degradation: every replica down or in backoff
            if deadline is not None and WallClock.now() >= deadline:
                raise DeadlineExceeded(
                    f"replicated read of {query!r} abandoned: budget spent "
                    "across replica attempts, not degrading to the leader"
                )
            if not leader_ok:
                raise ReproError(
                    "no replica can serve and the leader is failed; promote a "
                    "replica (ReplicatedGraphService.promote) or recover"
                )
            self.registry.counter("repro_leader_read_fallbacks_total").inc()
            result = replace(leader.query(query, tool), source="leader")
            self._floor = max(self._floor, result.version)
            return result

    def engine(self, query: str, tool: Optional[str] = None):
        """The leader's registered engine (merge hooks for sharding)."""
        return self._leader.engine(query, tool)

    def result_and_partial(self, query: str, tool: Optional[str] = None):
        """Exact-version gather pair, always from the leader.

        The sharded router's barrier demands the *exact* router version,
        which only the leader is guaranteed to sit at -- replicas serve
        the bounded-staleness :meth:`query` path instead.
        """
        with self._lock:
            self._check_open()
            result, partial = self._leader.result_and_partial(query, tool)
            return replace(result, source="leader"), partial

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def promote(self, index: Optional[int] = None) -> int:
        """Fail over to a replica; returns the new leader's version.

        Elects the most-caught-up reachable replica (ties to the lowest
        node index) unless ``index`` picks one explicitly, promotes it
        under ``epoch + 1`` (fence old leader -> drain residual WAL ->
        adopt epoch, see :meth:`Replica.promote`), retargets the
        surviving replicas at the new leader's directory and persists the
        new regime.  The old leader is left un-closed and fenced: if it
        is a zombie that still takes writes, its next append raises
        ``FencedError`` instead of forking history.
        """
        with self._lock:
            self._check_open()
            if not self._replicas:
                raise ReproError("no replicas to promote")
            if index is not None:
                if not 0 <= index < len(self._replicas):
                    raise ReproError(
                        f"promote index {index} out of range "
                        f"[0, {len(self._replicas)})"
                    )
                self._replicas[index].catch_up()
                chosen_i = index
            else:
                candidates = []
                for i, rep in enumerate(self._replicas):
                    try:
                        rep.catch_up()
                    except Exception:
                        continue  # unreachable: not a candidate
                    candidates.append(i)
                if not candidates:
                    raise ReproError("no reachable replica to promote")
                chosen_i = min(
                    candidates, key=lambda i: (-self._replicas[i].version, i)
                )
            chosen = self._replicas[chosen_i]
            new_epoch = self.epoch + 1
            # promote first, pop after: a promote that dies part-way (e.g.
            # at the ``promote`` crash point) leaves the fleet intact and
            # the whole call safely retryable
            service = chosen.promote(new_epoch)
            self._replicas.pop(chosen_i)
            self.epoch = new_epoch
            self._deposed.append(self._leader)
            self._leader = service
            self._leader_dir = chosen.data_dir
            self._leader_index = int(chosen.data_dir.name.split("-")[-1])
            for rep in self._replicas:
                rep.shipper.retarget(chosen.data_dir)
            self._rr = 0
            self._backoff.clear()
            self._write_meta()
            return service.version

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Fleet snapshot; refreshes the per-replica lag gauges so
        ``stats()["metrics"]`` always carries ``repro_replication_lag``."""
        with self._lock:
            target = self._leader.version
            for rep in self._replicas:
                self.registry.gauge(
                    "repro_replication_lag", replica=rep.name
                ).set(target - rep.version)
            return {
                "version": target,
                "epoch": self.epoch,
                "leader": f"node-{self._leader_index:02d}",
                "replicas": {
                    rep.name: {
                        "version": rep.version,
                        "lag": target - rep.version,
                        "epoch": rep.epoch,
                    }
                    for rep in self._replicas
                },
                "max_staleness": self.max_staleness,
                "deposed": len(self._deposed),
                "metrics": self.registry.snapshot(),
                "leader_stats": self._leader.stats(),
            }

    def metrics_text(self, labels: Optional[dict] = None) -> str:
        """Prometheus exposition: the front's replication series merged
        with the leader's and every replica's series, each stamped
        ``node="..."`` so no two fleet members collide on a series; one
        ``# TYPE`` line per metric across the whole fleet."""
        with self._lock:
            target = self._leader.version
            for rep in self._replicas:
                self.registry.gauge(
                    "repro_replication_lag", replica=rep.name
                ).set(target - rep.version)
            base = dict(labels or {})
            parts = [render_prometheus(self.registry, labels=labels)]
            parts.append(
                self._leader.metrics_text(
                    labels={**base, "node": f"node-{self._leader_index:02d}"}
                )
            )
            parts.extend(
                rep.service.metrics_text(labels={**base, "node": rep.name})
                for rep in self._replicas
            )
            return merge_expositions(parts)

    # ------------------------------------------------------------------
    # persistence / lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Snapshot the leader at its current applied version."""
        with self._lock:
            self._check_open()
            return self._leader.snapshot()

    def catch_up(self) -> list[int]:
        """Drain every replica to the leader's committed frontier;
        returns the replicas' versions afterwards."""
        with self._lock:
            self._check_open()
            for rep in self._replicas:
                rep.catch_up()
            return [rep.version for rep in self._replicas]

    def close(self) -> None:
        """Close the fleet: replicas, deposed zombies, then the leader."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for rep in self._replicas:
            rep.close()
        for svc in self._deposed:
            try:
                svc.close()
            except Exception:
                # a fenced zombie's close-time flush is *supposed* to be
                # rejected; reaping it must not mask that
                pass
        try:
            self._leader.close()
        except Exception:
            if not self._leader._failed:
                raise

    def _check_open(self) -> None:
        if self._closed:
            raise ReproError("replicated service is closed")

    def __enter__(self) -> "ReplicatedGraphService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicatedGraphService<v{self._leader.version}, "
            f"leader=node-{self._leader_index:02d}, "
            f"replicas={len(self._replicas)}, epoch={self.epoch}>"
        )
