"""WAL shipping: the seam between a leader's durable state and its replicas.

A replica needs exactly two things from its leader: a **bootstrap** (the
newest snapshot, to seed its graph) and a **tail** (every committed WAL
frame past its current version).  :class:`WalShipper` names that contract;
:class:`DirectoryWalShipper` implements it over a shared filesystem --
replica and leader see the same data directory, the transport is the
kernel's page cache.  The seam is deliberately transport-shaped: a socket
implementation would stream the same ``(version, batch, epoch)`` frames
and serve the same snapshot bytes, and nothing in
:class:`~repro.replication.Replica` would change.

Safety properties the directory shipper inherits from
:mod:`repro.serving.persistence`:

* only **committed** frames ship -- :meth:`ChangeLog.replay_frames` drops
  a torn tail (leader crashed mid-append), so a replica can never apply a
  frame the leader did not fsync;
* snapshots are fsynced before their atomic rename, so :meth:`bootstrap`
  can never load a renamed-but-torn snapshot;
* every frame carries the **epoch** it was written under, which is how a
  replica notices leadership changes (see
  :meth:`~repro.replication.Replica.apply_frame`).

The ``ship`` crash point fires at the top of every :meth:`poll` -- the
moment a real transport would fail -- so the failover suite can kill the
shipping path deterministically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Protocol

from repro.faults import fire as _fire_fault
from repro.faults import register_crash_point
from repro.model.changes import ChangeSet
from repro.model.graph import SocialGraph
from repro.serving.persistence import (
    ChangeLog,
    SnapshotStore,
    read_fence,
    write_fence,
)
from repro.util.validation import ReproError

__all__ = ["DirectoryWalShipper", "WalShipper"]

CRASH_SHIP = register_crash_point(
    "ship",
    "DirectoryWalShipper.poll, before any frames are read from the "
    "leader's WAL",
)


class WalShipper(Protocol):
    """What a replica needs from *any* leader transport."""

    def bootstrap(self) -> tuple[int, SocialGraph, int]:
        """Newest full state: ``(version, graph, epoch)``."""
        ...

    def poll(self, after_version: int) -> list[tuple[int, ChangeSet, int]]:
        """Committed ``(version, batch, epoch)`` frames past ``after_version``."""
        ...

    def fence(self, epoch: int) -> None:
        """Durably forbid the source from appending under ``< epoch``."""
        ...

    def retarget(self, source) -> None:
        """Follow a new leader from now on."""
        ...


class DirectoryWalShipper:
    """Ship a leader's WAL out of its data directory (shared filesystem).

    >>> import tempfile
    >>> from repro.model.changes import AddUser, ChangeSet
    >>> from repro.serving.persistence import ChangeLog, SnapshotStore
    >>> src = tempfile.mkdtemp()
    >>> _ = SnapshotStore(src).save(SocialGraph(), 0)
    >>> _ = ChangeLog(src).append(1, ChangeSet([AddUser(7)]))
    >>> shipper = DirectoryWalShipper(src)
    >>> version, graph, epoch = shipper.bootstrap()
    >>> (version, epoch)
    (0, 0)
    >>> [(v, len(batch), e) for v, batch, e in shipper.poll(version)]
    [(1, 1, 0)]
    """

    def __init__(self, source, *, storage=None, storage_dir=None):
        self.source = Path(source)
        self.storage = storage
        self.storage_dir = storage_dir

    def bootstrap(self) -> tuple[int, SocialGraph, int]:
        """Load the leader's newest snapshot: ``(version, graph, epoch)``.

        The epoch is the source directory's fence -- the minimum epoch the
        leader position has been promised away to -- so a replica seeded
        after a failover starts already knowing the new regime.

        ``sweep=False`` because this store is a *reader* of the leader's
        live directory: sweeping ``.tmp`` trees here could delete a save
        the owning writer has in flight (see :class:`SnapshotStore`).
        """
        store = SnapshotStore(self.source, sweep=False)
        version = store.latest()
        if version is None:
            raise ReproError(f"no snapshot to bootstrap from in {self.source}")
        graph = store.load(
            version, storage=self.storage, storage_dir=self.storage_dir
        )
        return version, graph, read_fence(self.source)

    def poll(self, after_version: int) -> list:
        """Every committed ``(version, batch, epoch)`` past ``after_version``.

        Returns a fully-materialised list (not a generator) so the
        ``ship`` crash point fires at call time and a mid-iteration crash
        cannot leave a frame half-consumed.
        """
        log = ChangeLog(self.source)
        _fire_fault(CRASH_SHIP, path=str(log.path), after_version=after_version)
        return list(log.replay_frames(after_version))

    def fence(self, epoch: int) -> None:
        """Stamp the source directory: appends under ``< epoch`` now raise."""
        write_fence(self.source, epoch)

    def retarget(self, source) -> None:
        """Follow a new leader's directory (after a promotion)."""
        self.source = Path(source)
