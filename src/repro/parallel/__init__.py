"""Comment-granularity parallel execution (the paper's OpenMP substitute).

The paper parallelises Q2 "using OpenMP constructs at the granularity of
comments".  CPython threads cannot speed up CPU-bound per-comment work
(GIL), so the "8 threads" configurations of Fig. 5 map to
:class:`~repro.parallel.pool.PersistentWorkerPool`: workers forked once
(where OpenMP spawns its threads) and re-primed through shared memory per
evaluation, reproducing OpenMP's cheap-region cost model.  The serial,
thread, per-region process-pool and per-region fork-join executors exist
for the ablation benchmark that documents this substitution chain
(``benchmarks/bench_ablation_parallel.py``).

Since the multicore kernel layer landed, the same pool also serves as the
process-wide *kernel executor* (:mod:`repro.graphblas._kernels.parallel`,
``REPRO_WORKERS``): comment-granularity parallelism here, row-block
kernel parallelism there, one worker-pool mechanism underneath both.
"""

from repro.parallel.executor import (
    Executor,
    ForkJoinExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_evenly,
    even_bounds,
    make_executor,
)
from repro.parallel.pool import PersistentWorkerPool

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ForkJoinExecutor",
    "PersistentWorkerPool",
    "chunk_evenly",
    "even_bounds",
    "make_executor",
]
