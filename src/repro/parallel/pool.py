"""A persistent fork-based worker pool with shared-memory state shipping.

OpenMP's cost model -- the one the paper's "8 threads" configuration lives
in -- is: worker threads are spawned once per process and *share* the
parent's memory, so a parallel region costs microseconds to enter.  Neither
of Python's stock answers matches that on this workload:

* threads share memory but serialise on the GIL (the per-comment kernel is
  Python-heavy);
* a ``multiprocessing.Pool`` per region pays ~250 ms of spawn machinery,
  and even a raw ``os.fork`` fan-out costs ~25 ms *per child* once the
  parent owns a benchmark-sized heap (fork copies page tables).

:class:`PersistentWorkerPool` forks its workers **once**, at the first
parallel region, and afterwards only ships *state changes*: the primed
read-only arrays (the Likes/Friends CSR of the current evaluation) are
written to ``.npy`` files under ``/dev/shm`` and workers ``mmap`` them --
one memcpy in the parent, zero copies in the workers, all sharing the same
page-cache pages.  A version counter lets workers skip re-priming when the
state has not changed between regions.

Protocol (length-prefixed pickles over two pipes per worker):

    parent -> worker:  (fn, initializer, version, array_paths, chunks)
    worker -> parent:  ("ok", results) | ("err", traceback_text)

The pool is deliberately not a general task queue: one ``map_chunks`` is
one synchronous fork-join region, matching OpenMP semantics (and the
profile of Q2's per-comment loop).
"""

from __future__ import annotations

import os
import pickle
import shutil
import struct
import tempfile
import traceback
from typing import Callable, Optional

import numpy as np

from repro.parallel.executor import Executor
from repro.util.validation import ReproError

__all__ = ["PersistentWorkerPool", "recv_frame", "send_frame"]

_LEN = struct.Struct("<Q")


def send_frame(fd: int, obj) -> None:
    """Write one length-prefixed pickle frame (``<Q length><payload>``).

    The wire discipline every pipe RPC in the repo speaks -- this pool's
    fork-join regions and the per-shard worker RPC in
    :mod:`repro.sharding.handle` alike.
    """
    payload = pickle.dumps(obj, protocol=5)
    os.write(fd, _LEN.pack(len(payload)))
    # os.write may write partially for large payloads on a pipe
    view = memoryview(payload)
    while view:
        n = os.write(fd, view)
        view = view[n:]


def _recv_exact(fd: int, n: int) -> bytes:
    parts = []
    while n:
        chunk = os.read(fd, min(n, 1 << 20))
        if not chunk:
            raise EOFError("worker pipe closed")
        parts.append(chunk)
        n -= len(chunk)
    return b"".join(parts)


def recv_frame(fd: int):
    """Read one :func:`send_frame` frame; raises ``EOFError`` on a closed
    pipe (how a peer's death is detected)."""
    (length,) = _LEN.unpack(_recv_exact(fd, _LEN.size))
    return pickle.loads(_recv_exact(fd, length))


# historical private names, still used throughout this module
_send = send_frame
_recv = recv_frame


def _shm_root() -> str:
    return "/dev/shm" if os.path.isdir("/dev/shm") else tempfile.gettempdir()


def _worker_loop(cmd_fd: int, res_fd: int) -> None:
    """Run in the child: serve fork-join regions until the None sentinel."""
    primed_version = -1
    while True:
        try:
            msg = _recv(cmd_fd)
        except EOFError:
            break
        if msg is None:
            break
        fn, initializer, version, array_paths, chunks = msg
        try:
            if initializer is not None and version != primed_version:
                arrays = [np.load(p, mmap_mode="r") for p in array_paths]
                initializer(*arrays)
                primed_version = version
            _send(res_fd, ("ok", [fn(chunk) for chunk in chunks]))
        except BaseException:
            try:
                _send(res_fd, ("err", traceback.format_exc()))
            except BaseException:  # pragma: no cover - pipe gone
                break


class PersistentWorkerPool(Executor):
    """Fork-once workers + shared-memory priming (see module docstring).

    Use as a context manager or call :meth:`close`; an unclosed pool's
    workers exit on their own when the parent's pipes close at interpreter
    shutdown.
    """

    MIN_PARALLEL_ITEMS = 256

    def __init__(self, workers: int = 8):
        if workers < 1:
            raise ReproError("workers must be >= 1")
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise ReproError("PersistentWorkerPool requires os.fork")
        self.workers = workers
        self._children: list[tuple[int, int, int]] = []  # (pid, cmd_w, res_r)
        self._dir: Optional[str] = None
        self._version = 0
        self._primed_key: Optional[tuple] = None
        self._paths: list[str] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "PersistentWorkerPool":
        """Fork the workers now (idempotent).

        Engines call this during the TTC Initialization phase so the
        one-time fork cost lands where OpenMP's thread-spawn cost does --
        outside the measured evaluation phases.
        """
        if self._children:
            return self
        import atexit

        # unclosed pools: reap the workers and remove the /dev/shm arena at
        # interpreter shutdown (close() is idempotent, so an explicit close
        # first is fine); without this the tmpfs directory outlives the
        # process
        atexit.register(self.close)
        self._dir = tempfile.mkdtemp(prefix="repro-pool-", dir=_shm_root())
        # No cpu_count clamp: like omp_set_num_threads, the requested width
        # is honoured even on smaller machines (oversubscribed forked
        # workers time-slice; the parallel==serial property tests rely on
        # genuinely exercising multi-worker regions on 1-2 core CI boxes).
        for _ in range(self.workers):
            cmd_r, cmd_w = os.pipe()
            res_r, res_w = os.pipe()
            pid = os.fork()
            if pid == 0:  # child
                os.close(cmd_w)
                os.close(res_r)
                status = 0
                try:
                    _worker_loop(cmd_r, res_w)
                except BaseException:  # pragma: no cover - child-side
                    status = 1
                finally:
                    os._exit(status)
            os.close(cmd_r)
            os.close(res_w)
            self._children.append((pid, cmd_w, res_r))
        return self

    def close(self) -> None:
        for pid, cmd_w, res_r in self._children:
            try:
                _send(cmd_w, None)
            except OSError:  # pragma: no cover - worker already gone
                pass
            os.close(cmd_w)
            os.close(res_r)
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:  # pragma: no cover
                pass
        self._children.clear()
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
        self._primed_key = None

    # ------------------------------------------------------------------
    # state shipping
    # ------------------------------------------------------------------

    def _prime(self, initargs: tuple, salt=None) -> list[str]:
        """Write changed state arrays to shared memory; bump the version.

        The identity key is (id, shape, nnz-ish) per array: the engines
        rebuild the CSR arrays on every graph flush, so object identity is
        a reliable change signal, and the cheap extra fields guard against
        id reuse after garbage collection.  ``salt`` folds the initializer
        identity and inline extras into the key: two regions priming the
        *same* arrays through different initializers (or with different
        inline arguments, e.g. another semiring name) must not share a
        version, or the workers would skip the re-prime they need.
        """
        arrays = [np.ascontiguousarray(a) for a in initargs if isinstance(a, np.ndarray)]
        if len(arrays) != len(initargs):
            raise ReproError(
                "PersistentWorkerPool initargs must all be numpy arrays "
                "(scalars can be shipped as 0-d arrays)"
            )
        key = (salt,) + tuple((id(a), a.shape, a.dtype.str) for a in initargs)
        if key == self._primed_key:
            return self._paths
        for path in self._paths:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover
                pass
        self._version += 1
        self._paths = []
        for i, a in enumerate(arrays):
            path = os.path.join(self._dir, f"state_v{self._version}_{i}.npy")
            np.save(path, a)
            self._paths.append(path)
        self._primed_key = key
        return self._paths

    # ------------------------------------------------------------------
    # the fork-join region
    # ------------------------------------------------------------------

    def map_chunks(
        self,
        fn: Callable,
        chunks,
        *,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> list:
        chunks = list(chunks)
        if not chunks:
            return []
        self.start()
        n = min(len(self._children), len(chunks))
        if n == 1 or len(chunks) == 1:
            if initializer is not None:
                initializer(*initargs)
            # serial fallback: wrap like the forked path so the pool's error
            # contract is uniform (and the pool stays usable afterwards --
            # nothing was shipped to the workers)
            try:
                return [fn(chunk) for chunk in chunks]
            except Exception:
                raise ReproError(
                    "worker failure(s):\n" + traceback.format_exc()
                ) from None

        # non-array initargs (e.g. the algorithm name) ride along as 0-d
        # object arrays would be unpicklable via np.save; ship them inline
        array_args = tuple(a for a in initargs if isinstance(a, np.ndarray))
        extra_args = tuple(a for a in initargs if not isinstance(a, np.ndarray))
        salt = (getattr(initializer, "__qualname__", repr(initializer)), extra_args)
        paths = self._prime(array_args, salt=salt)
        version = self._version

        init = None
        if initializer is not None:
            init = _Reprime(initializer, extra_args)

        assignments = [list(range(w, len(chunks), n)) for w in range(n)]
        for (pid, cmd_w, _res_r), idxs in zip(self._children, assignments):
            _send(cmd_w, (fn, init, version, paths, [chunks[i] for i in idxs]))

        results: list = [None] * len(chunks)
        errors: list[str] = []
        for (_pid, _cmd_w, res_r), idxs in zip(self._children, assignments):
            status, payload = _recv(res_r)
            if status == "err":
                errors.append(payload)
                continue
            for i, value in zip(idxs, payload):
                results[i] = value
        if errors:
            raise ReproError("worker failure(s):\n" + "\n".join(errors))
        return results


class _Reprime:
    """Picklable shim: re-orders mmap'd arrays and inline extras back into
    the initializer's original signature (arrays first is the convention of
    the Q2 kernel; extras are appended)."""

    def __init__(self, initializer: Callable, extra_args: tuple):
        self.initializer = initializer
        self.extra_args = extra_args

    def __call__(self, *arrays) -> None:
        self.initializer(*arrays, *self.extra_args)
