"""Serial / thread / process executors with even chunking.

The API is deliberately tiny: an executor maps a picklable function over a
list of *chunks* (not items), because per-item dispatch would drown the
typical sub-millisecond comment workload in IPC overhead.  Worker processes
can be primed with a one-time ``initializer`` so large read-only state (the
Friends matrix) crosses the process boundary once instead of per task --
the standard fork-and-initialize idiom from the mpi4py/multiprocessing
guidance: ship big arrays once, then send only small task descriptors.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.util.validation import ReproError

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ForkJoinExecutor",
    "chunk_evenly",
    "even_bounds",
    "make_executor",
]


def even_bounds(total: int, n_chunks: int) -> np.ndarray:
    """The split bounds :func:`chunk_evenly` uses: ``n_chunks + 1`` even
    int64 cut points over ``[0, total]``.  Exposed on its own because the
    kernel layer (:mod:`repro.graphblas._kernels.parallel`) applies the same
    bounds logic to a CSR ``indptr`` to balance row blocks by *nnz* rather
    than by row count."""
    return np.linspace(0, total, n_chunks + 1).astype(np.int64)


def chunk_evenly(items: Sequence, n_chunks: int) -> list:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks.

    ``np.ndarray`` and ``range`` inputs are sliced, not copied: each chunk is
    a view (or sub-range), so chunking a million-row workload costs O(chunks)
    rather than materialising every element into per-chunk Python lists.
    Other sequences keep the historical list-of-lists contract.
    """
    n = len(items)
    if n == 0:
        return []
    n_chunks = max(1, min(n_chunks, n))
    bounds = even_bounds(n, n_chunks)
    if isinstance(items, (np.ndarray, range)):
        return [items[int(bounds[i]) : int(bounds[i + 1])] for i in range(n_chunks)]
    return [list(items[bounds[i] : bounds[i + 1]]) for i in range(n_chunks)]


class Executor:
    """Maps a function over chunks; subclasses choose the execution vehicle."""

    #: logical worker count (1 for serial)
    workers: int = 1

    def map_chunks(
        self,
        fn: Callable,
        chunks: Iterable,
        *,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
    ) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (no-op for serial/thread)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(Executor):
    """Run everything inline (the single-threaded Fig. 5 configurations)."""

    workers = 1

    def map_chunks(self, fn, chunks, *, initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)
        return [fn(chunk) for chunk in chunks]


class ThreadExecutor(Executor):
    """Thread pool.  Provided for the ablation study; the GIL bounds gains."""

    def __init__(self, workers: int = 8):
        if workers < 1:
            raise ReproError("workers must be >= 1")
        self.workers = workers

    def map_chunks(self, fn, chunks, *, initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)
        chunks = list(chunks)
        if not chunks:
            return []
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(fn, chunks))


class ProcessExecutor(Executor):
    """Process pool: real parallelism for the "8 threads" configurations.

    A fresh fork-context pool is spawned *per call*: on Linux ``fork``
    inherits the initializer arguments copy-on-write, so arbitrarily large
    read-only state (the Friends/Likes matrices) ships to all workers for
    free, while the pipes only carry small chunk descriptors and results.

    The price is a fixed spawn/teardown cost (~25 ms per worker on this
    class of machine).  That cost is intrinsic to per-evaluation parallel
    regions and is exactly the "parallelization overhead" the paper reports:
    it only amortises for the costly batch recomputations on large graphs,
    not for small incremental updates (callers fall back to
    :class:`SerialExecutor` below :data:`MIN_PARALLEL_ITEMS` work items).
    """

    #: below this many work items a parallel region cannot amortise the
    #: pool spawn cost; callers should run serially.
    MIN_PARALLEL_ITEMS = 1024

    def __init__(self, workers: int = 8):
        if workers < 1:
            raise ReproError("workers must be >= 1")
        self.workers = workers
        self._ctx = None

    def _context(self):
        if self._ctx is None:
            import multiprocessing as mp

            try:
                self._ctx = mp.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                self._ctx = mp.get_context()
        return self._ctx

    def map_chunks(self, fn, chunks, *, initializer=None, initargs=()):
        chunks = list(chunks)
        if not chunks:
            return []
        ctx = self._context()
        n = min(self.workers, os.cpu_count() or 1, len(chunks))
        with ctx.Pool(n, initializer=initializer, initargs=initargs) as pool:
            return pool.map(fn, chunks)

    def close(self) -> None:
        self._ctx = None


class ForkJoinExecutor(Executor):
    """Direct ``os.fork`` fan-out: the closest POSIX analogue of OpenMP.

    OpenMP parallel regions reuse long-lived threads that *share* the
    parent's memory, so entering a region costs microseconds.  Python's
    GIL rules threads out, and :class:`ProcessExecutor`'s pool pays
    ~250 ms of ``multiprocessing`` machinery per region -- enough to erase
    the paper's parallel-batch win at benchmark scale.  This executor forks
    the workers directly: each child inherits all parent state (the primed
    Friends/Likes CSR arrays) copy-on-write for free, computes its share of
    chunks, streams one pickle back over a pipe, and exits.  Entering a
    region costs one fork per worker (~5-10 ms total), restoring the
    OpenMP-like cost model the paper's "8 threads" configuration assumes.

    Children are joined by draining each pipe to EOF *before* ``waitpid``
    (draining last could deadlock on the 64 KiB pipe buffer).  A non-zero
    child exit or an unpicklable result raises in the parent.

    POSIX-only by construction; :func:`make_executor` falls back to
    :class:`ProcessExecutor` where ``os.fork`` is unavailable.
    """

    MIN_PARALLEL_ITEMS = 256

    def __init__(self, workers: int = 8):
        if workers < 1:
            raise ReproError("workers must be >= 1")
        self.workers = workers

    def map_chunks(self, fn, chunks, *, initializer=None, initargs=()):
        import pickle

        chunks = list(chunks)
        if not chunks:
            return []
        # prime in the parent: children inherit the state via fork COW
        if initializer is not None:
            initializer(*initargs)
        n = min(self.workers, os.cpu_count() or 1, len(chunks))
        if n == 1:
            # serial fallback: fail exactly like a forked worker would, so
            # callers see one exception type regardless of the path taken
            try:
                return [fn(chunk) for chunk in chunks]
            except Exception:
                import traceback

                raise ReproError(
                    "fork-join worker died (serial fallback):\n"
                    + traceback.format_exc()
                ) from None
        # round-robin assignment mirrors the strided chunking upstream
        assignments = [list(range(w, len(chunks), n)) for w in range(n)]

        children: list[tuple[int, int, list[int]]] = []  # (pid, read_fd, idxs)
        for idxs in assignments:
            r_fd, w_fd = os.pipe()
            pid = os.fork()
            if pid == 0:  # child
                os.close(r_fd)
                status = 1
                try:
                    payload = pickle.dumps([fn(chunks[i]) for i in idxs], protocol=5)
                    with os.fdopen(w_fd, "wb") as w:
                        w.write(payload)
                    status = 0
                except BaseException:  # pragma: no cover - child-side
                    try:
                        os.close(w_fd)
                    except OSError:
                        pass
                finally:
                    os._exit(status)
            os.close(w_fd)
            children.append((pid, r_fd, idxs))

        results: list = [None] * len(chunks)
        failed: list[int] = []
        for pid, r_fd, idxs in children:
            with os.fdopen(r_fd, "rb") as r:
                payload = r.read()  # drain to EOF before waitpid
            _, status = os.waitpid(pid, 0)
            if status != 0 or not payload:
                failed.append(pid)
                continue
            for i, value in zip(idxs, pickle.loads(payload)):
                results[i] = value
        if failed:
            raise ReproError(f"fork-join worker(s) {failed} died; see stderr")
        return results


def make_executor(kind: str, workers: int = 8) -> Executor:
    """Factory: ``serial`` | ``thread`` | ``process`` | ``forkjoin`` |
    ``persistent`` (fork-once pool with shared-memory priming -- the
    closest OpenMP analogue, used by the Fig. 5 "8 threads" variants)."""
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    if kind == "forkjoin":
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return ProcessExecutor(workers)
        return ForkJoinExecutor(workers)
    if kind == "persistent":
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return ProcessExecutor(workers)
        from repro.parallel.pool import PersistentWorkerPool

        return PersistentWorkerPool(workers)
    raise ReproError(f"unknown executor kind {kind!r}")
