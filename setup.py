"""Shim for environments without the `wheel` package (offline editable installs).

`pip install -e . --no-build-isolation` falls back to `setup.py develop`
through this file when PEP 660 editable wheels cannot be built.
"""
from setuptools import setup

setup()
